//! # bench-tables — regenerating the paper's evaluation
//!
//! Every table of the paper (Figures 7–10) plus the narrative claims of §4
//! has a binary in `src/bin/` that re-runs the experiment on the simulated
//! NCUBE/7 / iPSC/2 machines and prints the measured rows next to the
//! paper's published numbers.  Criterion micro-benchmarks for the ablations
//! (schedule lookup, crystal router vs direct exchange, compile-time vs
//! run-time analysis, overlap, schedule caching) live in `benches/`.
//!
//! Binaries (also listed per-experiment in `DESIGN.md`):
//!
//! | binary | paper table | sweep |
//! |--------|-------------|-------|
//! | `table_ncube_procs`      | Figure 7 | NCUBE/7, 128², P = 2…128 |
//! | `table_ipsc_procs`       | Figure 8 | iPSC/2, 128², P = 2…32 |
//! | `table_ncube_meshsize`   | Figure 9 | NCUBE/7, P = 128, 64²…1024² |
//! | `table_ipsc_meshsize`    | Figure 10 | iPSC/2, P = 32, 64²…1024² |
//! | `table_single_sweep`     | §4 narrative | worst-case inspector overhead |
//! | `table_inspector_breakdown` | §4 narrative | U-shaped inspector curve |
//! | `table_amortization`     | §3.2 claim | schedule-cache amortisation |
//! | `table_kali_vs_handcoded`| §1 claim | Kali vs hand-written message passing |
//! | `table_partition_locality` | extension | block vs partitioned placement on scrambled meshes |
//! | `table_adaptation`       | extension | §3.2 amortisation under adaptive-mesh churn (sweep over the adaptation interval k) |
//! | `table_multidim`         | extension | 2-D `[block, *]` stencils: compile-time planning vs inspector fallback, and the row↔column phase-change redistribution |
//! | `table_solvers`          | extension | Session & typed reductions: CG and red–black Gauss–Seidel with bit-identical histories, inspector amortisation and exact per-reduction message accounting |
//! | `table_collectives`      | extension | communication fast paths: tree allreduce `2(P−1)` vs flat allgather-fold `P·(P−1)` message scaling across P, and the stripe planner's zero-message red–black planning on chain meshes |
//! | `verify_all`             | correctness tooling | static verification sweep: schedule duality, tag safety, deadlock freedom, SPMD & determinism-contract conformance for every solver/distribution/backend configuration |
//! | `mc_all`                 | correctness tooling | trace-level model checking: happens-before analysis of recorded event traces plus bitwise-identical re-execution under perturbed delivery orders, for every solver/distribution/backend configuration |
//! | `table_all`              | everything above in one run |

#![forbid(unsafe_code)]

use solvers::ExperimentRow;

/// One published row of a paper table, for side-by-side printing.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// Number of processors in the row.
    pub procs: usize,
    /// Mesh side length.
    pub mesh_side: usize,
    /// Total time in seconds as published.
    pub total: f64,
    /// Executor time in seconds as published.
    pub executor: f64,
    /// Inspector time in seconds as published.
    pub inspector: f64,
    /// Published speedup (0.0 when the table has no speedup column).
    pub speedup: f64,
}

/// Figure 7: NCUBE/7, 100 sweeps, 128×128 mesh, varying processors.
pub const PAPER_FIG7_NCUBE_PROCS: &[PaperRow] = &[
    PaperRow {
        procs: 2,
        mesh_side: 128,
        total: 246.07,
        executor: 244.04,
        inspector: 2.03,
        speedup: 0.0,
    },
    PaperRow {
        procs: 4,
        mesh_side: 128,
        total: 127.46,
        executor: 126.12,
        inspector: 1.34,
        speedup: 0.0,
    },
    PaperRow {
        procs: 8,
        mesh_side: 128,
        total: 68.38,
        executor: 67.28,
        inspector: 1.10,
        speedup: 0.0,
    },
    PaperRow {
        procs: 16,
        mesh_side: 128,
        total: 38.95,
        executor: 37.88,
        inspector: 1.07,
        speedup: 0.0,
    },
    PaperRow {
        procs: 32,
        mesh_side: 128,
        total: 24.36,
        executor: 23.21,
        inspector: 1.15,
        speedup: 0.0,
    },
    PaperRow {
        procs: 64,
        mesh_side: 128,
        total: 17.71,
        executor: 16.42,
        inspector: 1.29,
        speedup: 0.0,
    },
    PaperRow {
        procs: 128,
        mesh_side: 128,
        total: 12.64,
        executor: 11.19,
        inspector: 1.45,
        speedup: 0.0,
    },
];

/// Figure 8: iPSC/2, 100 sweeps, 128×128 mesh, varying processors.
pub const PAPER_FIG8_IPSC_PROCS: &[PaperRow] = &[
    PaperRow {
        procs: 2,
        mesh_side: 128,
        total: 60.69,
        executor: 60.34,
        inspector: 0.34,
        speedup: 0.0,
    },
    PaperRow {
        procs: 4,
        mesh_side: 128,
        total: 31.20,
        executor: 31.02,
        inspector: 0.18,
        speedup: 0.0,
    },
    PaperRow {
        procs: 8,
        mesh_side: 128,
        total: 16.23,
        executor: 16.13,
        inspector: 0.10,
        speedup: 0.0,
    },
    PaperRow {
        procs: 16,
        mesh_side: 128,
        total: 8.88,
        executor: 8.82,
        inspector: 0.06,
        speedup: 0.0,
    },
    PaperRow {
        procs: 32,
        mesh_side: 128,
        total: 5.27,
        executor: 5.23,
        inspector: 0.04,
        speedup: 0.0,
    },
];

/// Figure 9: NCUBE/7, 100 sweeps on 128 processors, varying mesh size.
pub const PAPER_FIG9_NCUBE_MESH: &[PaperRow] = &[
    PaperRow {
        procs: 128,
        mesh_side: 64,
        total: 4.97,
        executor: 3.56,
        inspector: 1.38,
        speedup: 23.9,
    },
    PaperRow {
        procs: 128,
        mesh_side: 128,
        total: 12.64,
        executor: 11.19,
        inspector: 1.45,
        speedup: 37.3,
    },
    PaperRow {
        procs: 128,
        mesh_side: 256,
        total: 34.13,
        executor: 32.52,
        inspector: 1.61,
        speedup: 55.2,
    },
    PaperRow {
        procs: 128,
        mesh_side: 512,
        total: 93.78,
        executor: 91.68,
        inspector: 2.10,
        speedup: 80.4,
    },
    PaperRow {
        procs: 128,
        mesh_side: 1024,
        total: 305.03,
        executor: 301.31,
        inspector: 3.72,
        speedup: 98.9,
    },
];

/// Figure 10: iPSC/2, 100 sweeps on 32 processors, varying mesh size.
pub const PAPER_FIG10_IPSC_MESH: &[PaperRow] = &[
    PaperRow {
        procs: 32,
        mesh_side: 64,
        total: 1.88,
        executor: 1.86,
        inspector: 0.02,
        speedup: 15.7,
    },
    PaperRow {
        procs: 32,
        mesh_side: 128,
        total: 5.27,
        executor: 5.23,
        inspector: 0.04,
        speedup: 22.5,
    },
    PaperRow {
        procs: 32,
        mesh_side: 256,
        total: 17.65,
        executor: 17.54,
        inspector: 0.11,
        speedup: 26.8,
    },
    PaperRow {
        procs: 32,
        mesh_side: 512,
        total: 65.17,
        executor: 64.79,
        inspector: 0.38,
        speedup: 29.1,
    },
    PaperRow {
        procs: 32,
        mesh_side: 1024,
        total: 249.75,
        executor: 248.34,
        inspector: 1.41,
        speedup: 30.3,
    },
];

/// Print one reproduced table with the paper's numbers interleaved.
pub fn print_table(title: &str, rows: &[ExperimentRow], paper: &[PaperRow]) {
    println!("\n=== {title} ===");
    println!(
        "{}",
        ExperimentRow::table_header(rows.iter().any(|r| r.speedup.is_some()))
    );
    for row in rows {
        println!("{}", row.to_table_line());
        if let Some(p) = paper
            .iter()
            .find(|p| p.procs == row.nprocs && p.mesh_side == row.mesh_side)
        {
            let overhead = if p.total > 0.0 {
                p.inspector / p.total * 100.0
            } else {
                0.0
            };
            let speedup = if p.speedup > 0.0 {
                format!("  {:8.1}", p.speedup)
            } else {
                String::new()
            };
            println!(
                "{:>10}  {:>6}  {:>9}  {:>12.2}  {:>13.2}  {:>14.2}  {:>10.1}%{}",
                "(paper)",
                p.procs,
                format!("{0}x{0}", p.mesh_side),
                p.total,
                p.executor,
                p.inspector,
                overhead,
                speedup
            );
        }
    }
}

/// Environment switch for quick runs: when `KALI_QUICK=1`, the table
/// binaries shrink sweeps / mesh sizes so the whole suite finishes in
/// seconds (useful in CI); the shape of every trend is preserved.
pub fn quick_mode() -> bool {
    std::env::var("KALI_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Run the block-vs-partitioned locality experiment
/// (`table_partition_locality`) and print its table: the same Jacobi
/// program on a scrambled unstructured mesh under both placements, with the
/// dmsim locality counters cited via [`solvers::CommReport`].
///
/// Returns `true` when the partitioned placement is strictly lower on both
/// nonlocal references and message volume (the experiment's acceptance
/// criterion); callers decide whether that is fatal.
pub fn run_partition_locality() -> bool {
    use solvers::{ExperimentParams, Placement};

    let quick = quick_mode();
    let (side, nprocs, sweeps) = if quick { (24, 8, 10) } else { (48, 16, 100) };
    let mesh = meshes::UnstructuredMeshBuilder::new(side, side)
        .seed(1990)
        .scramble_numbering(true)
        .build();
    let initial: Vec<f64> = (0..mesh.len())
        .map(|i| ((i * 29) % 23) as f64 * 0.1)
        .collect();

    println!(
        "\n=== Node placement on a scrambled {side}x{side} unstructured mesh \
         (NCUBE/7, {nprocs} processors, {sweeps} sweeps) ==="
    );
    let owners = meshes::greedy_partition(&mesh, nprocs);
    let block_owners: Vec<usize> = meshes::block_partition(mesh.len(), nprocs);
    println!(
        "mesh: {} nodes, {} directed edges; cut edges: block {}, partitioned {}",
        mesh.len(),
        mesh.edge_count(),
        meshes::cut_edges(&mesh, &block_owners),
        meshes::cut_edges(&mesh, &owners),
    );

    let params = ExperimentParams {
        cost: dmsim::CostModel::ncube7(),
        nprocs,
        mesh_side: side,
        sweeps,
        compute_speedup: false,
        extrapolate_from: None,
        overlap: true,
        disable_schedule_cache: false,
        convergence_check_every: None,
    };

    println!(
        "\n{:>12}  {:>12}  {}",
        "placement",
        "total (s)",
        solvers::CommReport::table_header()
    );
    let mut rows = Vec::new();
    for placement in [Placement::Block, Placement::Partitioned] {
        let row = solvers::run_jacobi_experiment_placed(&params, &mesh, &initial, placement);
        println!(
            "{:>12}  {:>12.4}  {}",
            placement.name(),
            row.times.total,
            row.comm.to_table_line()
        );
        rows.push(row);
    }

    let (block, part) = (&rows[0].comm, &rows[1].comm);
    let lower = part.nonlocal_refs < block.nonlocal_refs && part.bytes < block.bytes;
    println!(
        "\npartitioned vs block: nonlocal refs x{:.2}, bytes x{:.2}, simulated time x{:.2}",
        part.nonlocal_refs as f64 / block.nonlocal_refs as f64,
        part.bytes as f64 / block.bytes as f64,
        rows[1].times.total / rows[0].times.total,
    );
    if lower {
        println!(
            "OK: partitioned placement strictly reduces nonlocal references and message volume"
        );
    } else {
        println!("FAIL: partitioned placement did not reduce communication");
    }
    lower
}

/// Run the adaptive-mesh amortisation experiment (`table_adaptation`) and
/// print its table: the same Jacobi program under deterministic mesh churn,
/// sweeping the adaptation interval `k` (`None` = static mesh).  Every
/// configuration rebalances the placement after each adaptation and runs on
/// both backends.
///
/// Returns `true` when every invariant holds: inspector cost per sweep
/// falls monotonically with `k`, peak schedule-cache residency stays within
/// the configured bound, and the dmsim field, the native field and the
/// sequential replay agree bit for bit.  Callers decide whether a `false`
/// is fatal (the binary exits nonzero; CI runs it with `--smoke`).
pub fn run_adaptation(smoke: bool) -> bool {
    use dmsim::{CostModel, Machine};
    use kali_native::NativeMachine;
    use solvers::{
        adaptive_jacobi_sequential, adaptive_jacobi_sweeps, final_placement, partitioned_dist,
        AdaptiveConfig,
    };

    let (side, nprocs, sweeps, intervals): (usize, usize, usize, Vec<Option<usize>>) = if smoke {
        (8, 2, 8, vec![Some(1), Some(2), Some(4), None])
    } else {
        // 128 sweeps so even k = 64 performs an adaptation (the curve then
        // falls strictly all the way to the static-mesh run).
        (32, 8, 128, vec![Some(1), Some(4), Some(16), Some(64), None])
    };
    let cache_capacity = 4usize;

    let mesh = meshes::UnstructuredMeshBuilder::new(side, side)
        .seed(1990)
        .scramble_numbering(true)
        .build();
    let initial: Vec<f64> = (0..mesh.len())
        .map(|i| ((i * 29) % 23) as f64 * 0.1)
        .collect();

    println!(
        "\n=== Adaptive-mesh amortisation (NCUBE/7, {side}x{side} scrambled mesh, \
         {nprocs} processors, {sweeps} sweeps, rebalancing, cache bound {cache_capacity}) ==="
    );
    println!(
        "{:>8}  {:>7}  {:>13}  {:>16}  {:>10}  {:>6}  {:>6}  {:>6}  {:>9}  {:>10}",
        "k",
        "adapts",
        "inspector (s)",
        "inspector/sweep",
        "adapt (s)",
        "hits",
        "miss",
        "evict",
        "peak res",
        "res bytes"
    );

    let mut per_sweep = Vec::new();
    let mut ok = true;
    for k in &intervals {
        let config = AdaptiveConfig {
            sweeps,
            adapt_every: *k,
            rebalance: true,
            cache_capacity,
            ..AdaptiveConfig::default()
        };

        let machine = Machine::new(nprocs, CostModel::ncube7());
        let outcomes = machine.run(|proc| {
            let dist = partitioned_dist(proc, &mesh);
            adaptive_jacobi_sweeps(proc, &mesh, &dist, &initial, &config)
        });
        let native_outcomes = NativeMachine::new(nprocs).run(|proc| {
            let dist = partitioned_dist(proc, &mesh);
            adaptive_jacobi_sweeps(proc, &mesh, &dist, &initial, &config)
        });

        let init_dist = distrib::DimDist::custom(meshes::greedy_partition(&mesh, nprocs), nprocs);
        let final_dist = final_placement(&mesh, &init_dist, &config);
        let gather = |locals: &[Vec<f64>]| solvers::gather_global(&final_dist, locals);
        let simulated = gather(
            &outcomes
                .iter()
                .map(|o| o.local_a.clone())
                .collect::<Vec<_>>(),
        );
        let native = gather(
            &native_outcomes
                .iter()
                .map(|o| o.local_a.clone())
                .collect::<Vec<_>>(),
        );

        let inspector = outcomes
            .iter()
            .map(|o| o.inspector_time)
            .fold(0.0f64, f64::max);
        let adapt = outcomes.iter().map(|o| o.adapt_time).fold(0.0f64, f64::max);
        // Residency is an invariant of the runtime, not of one backend:
        // take the peak over *both* runs so a native-side eviction
        // regression cannot slip past the CI gate.
        let peak_resident = outcomes
            .iter()
            .chain(&native_outcomes)
            .map(|o| o.cache_peak_resident)
            .max()
            .unwrap_or(0);
        let label = k.map(|v| v.to_string()).unwrap_or_else(|| "inf".into());
        let ips = inspector / sweeps as f64;
        println!(
            "{:>8}  {:>7}  {:>13.4}  {:>16.6}  {:>10.4}  {:>6}  {:>6}  {:>6}  {:>9}  {:>10}",
            label,
            outcomes[0].adaptations,
            inspector,
            ips,
            adapt,
            outcomes.iter().map(|o| o.cache_hits).sum::<u64>(),
            outcomes.iter().map(|o| o.cache_misses).sum::<u64>(),
            outcomes.iter().map(|o| o.cache_evictions).sum::<u64>(),
            peak_resident,
            outcomes
                .iter()
                .map(|o| o.cache_resident_bytes)
                .sum::<usize>()
        );
        per_sweep.push(ips);

        // Invariants: bounded residency, backend agreement, replay match.
        if peak_resident > cache_capacity {
            println!(
                "FAIL: k={label}: peak residency {peak_resident} exceeds the bound \
                 {cache_capacity}"
            );
            ok = false;
        }
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        if bits(&simulated) != bits(&native) {
            println!("FAIL: k={label}: dmsim and native fields diverge");
            ok = false;
        }
        let cache_counters = |os: &[solvers::AdaptiveOutcome]| {
            os.iter()
                .map(|o| (o.cache_hits, o.cache_misses, o.cache_evictions))
                .collect::<Vec<_>>()
        };
        if cache_counters(&outcomes) != cache_counters(&native_outcomes) {
            println!("FAIL: k={label}: cache counters diverge between backends");
            ok = false;
        }
        let expected = adaptive_jacobi_sequential(&mesh, &initial, &config);
        if bits(&simulated) != bits(&expected) {
            println!("FAIL: k={label}: distributed field diverges from the sequential replay");
            ok = false;
        }
    }

    // The amortisation curve: inspector cost per sweep falls monotonically
    // as the adaptation interval grows.
    for (i, w) in per_sweep.windows(2).enumerate() {
        if w[1] >= w[0] {
            println!(
                "FAIL: inspector cost per sweep did not fall from interval #{i} to #{}: \
                 {per_sweep:?}",
                i + 1
            );
            ok = false;
        }
    }

    if ok {
        println!(
            "\nOK: inspector cost per sweep falls monotonically with the adaptation interval, \
             residency stays within the bound, and dmsim, native and sequential replay agree \
             bit for bit"
        );
    }
    ok
}

/// Run the multi-dimensional `ParallelLoop` experiment (`table_multidim`)
/// and print its tables:
///
/// 1. **Planning paths.**  The `[block, *]` affine shift stencil must plan
///    through the multi-dimensional compile-time analysis — zero messages,
///    zero inspector runs, nonempty halo — while an indirect (data-dependent)
///    reference pattern over the same decomposition falls back to the cached
///    inspector (one collective inspector run, then cache hits).
/// 2. **The phase-change demo.**  The alternating-direction smoother under
///    both strategies, on dmsim and the native backend, with per-phase
///    [`solvers::CommReport`]s surfaced through [`ExperimentRow`] so the
///    row↔column redistribution cost is visible next to the halo traffic it
///    replaces.  All runs must agree bit for bit with the sequential replay.
///
/// Returns `true` when every claim holds; the binary exits nonzero
/// otherwise (CI runs it with `--smoke`).
pub fn run_multidim(smoke: bool) -> bool {
    use distrib::{ArrayDist, FlatDist};
    use dmsim::{CostModel, Machine};
    use kali_core::{MultiAffineMap, ParallelLoop, Rect, ScheduleCache};
    use kali_native::NativeMachine;
    use solvers::{
        gather_multidim, multidim_field, multidim_sequential, multidim_sweeps, phase_comm_reports,
        row_placement, CommReport, ExperimentRow, MultiDimConfig, PhaseBreakdown, PhaseStrategy,
    };

    let (side, nprocs, rounds, sweeps_per_phase) =
        if smoke { (12, 4, 2, 3) } else { (64, 8, 3, 8) };
    let mut ok = true;

    println!(
        "\n=== Multi-dimensional foralls: a {side}x{side} field dist by [block, *] \
         (NCUBE/7, {nprocs} processors) ==="
    );

    // ---- Claim 1a: the [block, *] shift stencil plans compile-time --------
    let machine = Machine::new(nprocs, CostModel::ncube7());
    let (results, stats) = machine.run_stats(|proc| {
        let flat = FlatDist::new(ArrayDist::block_rows(side, side, proc.nprocs()));
        let space = Rect::full(&[side, side]).restrict(0, 1, side - 1);
        let loop_ = ParallelLoop::over(0x4D44_0001, space, flat.clone());
        let mut cache = ScheduleCache::new();
        let refs = [
            MultiAffineMap::shifts(&[-1, 0]),
            MultiAffineMap::shifts(&[1, 0]),
        ];
        let s = loop_.plan(proc, &mut cache, &flat, &refs, 0);
        (cache.misses(), s.recv_len)
    });
    let plan_msgs = stats.totals.msgs_sent;
    let inspector_runs: u64 = results.iter().map(|r| r.0).sum();
    let halo: usize = results.iter().map(|r| r.1).sum();
    println!(
        "\naffine [block, *] shift stencil: planning messages {plan_msgs}, inspector runs \
         {inspector_runs}, halo elements {halo}"
    );
    if plan_msgs != 0 || inspector_runs != 0 {
        println!("FAIL: the separable shift stencil must take the zero-message compile-time path");
        ok = false;
    }
    if halo != 2 * (nprocs - 1) * side {
        println!("FAIL: expected one boundary row per neighbour pair, got {halo} halo elements");
        ok = false;
    }

    // ---- Claim 1b: indirect references fall back to the cached inspector --
    let machine = Machine::new(nprocs, CostModel::ncube7());
    let (results, stats) = machine.run_stats(|proc| {
        let flat = FlatDist::new(ArrayDist::block_rows(side, side, proc.nprocs()));
        let loop_ = ParallelLoop::over(0x4D44_0002, Rect::full(&[side, side]), flat.clone());
        let mut cache = ScheduleCache::new();
        let n = side * side;
        let refs = |g: usize, out: &mut Vec<usize>| out.push((g * 13 + 7) % n);
        loop_.plan_indirect(proc, &mut cache, &flat, 0, refs);
        loop_.plan_indirect(proc, &mut cache, &flat, 0, refs);
        (cache.misses(), cache.hits())
    });
    let fallback_msgs = stats.totals.msgs_sent;
    println!(
        "indirect gather over the same decomposition: planning messages {fallback_msgs}, \
         inspector runs {} (then {} cache hits)",
        results.iter().map(|r| r.0).sum::<u64>(),
        results.iter().map(|r| r.1).sum::<u64>()
    );
    if results.iter().any(|&(m, h)| m != 1 || h != 1) {
        println!("FAIL: the indirect case must run the inspector once and then hit the cache");
        ok = false;
    }
    if nprocs > 1 && fallback_msgs == 0 {
        println!("FAIL: the inspector's global exchange must send messages");
        ok = false;
    }

    // ---- Claim 2: the phase-change demo ------------------------------------
    let mut config = MultiDimConfig::new(side, side);
    config.rounds = rounds;
    config.sweeps_per_phase = sweeps_per_phase;
    let initial = multidim_field(side, side);
    let expected = multidim_sequential(&config, &initial);
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();

    println!(
        "\nphase-change demo: {rounds} rounds x {sweeps_per_phase} sweeps per phase \
         (vertical then horizontal)"
    );
    println!("\n{}", ExperimentRow::comm_header());
    let mut rows = Vec::new();
    for strategy in [PhaseStrategy::RowsThroughout, PhaseStrategy::PhaseChange] {
        config.strategy = strategy;
        let machine = Machine::new(nprocs, CostModel::ncube7());
        let (outcomes, stats) = machine.run_stats(|proc| multidim_sweeps(proc, &config, &initial));
        let native_outcomes =
            NativeMachine::new(nprocs).run(|proc| multidim_sweeps(proc, &config, &initial));

        let final_dist = row_placement(&config, nprocs);
        let locals: Vec<Vec<f64>> = outcomes.iter().map(|o| o.local_a.clone()).collect();
        let native_locals: Vec<Vec<f64>> =
            native_outcomes.iter().map(|o| o.local_a.clone()).collect();
        let simulated = gather_multidim(&final_dist, &locals);
        let native = gather_multidim(&final_dist, &native_locals);
        if bits(&simulated) != bits(&native) {
            println!("FAIL: {}: dmsim and native fields diverge", strategy.name());
            ok = false;
        }
        if bits(&simulated) != bits(&expected) {
            println!(
                "FAIL: {}: distributed field diverges from the sequential replay",
                strategy.name()
            );
            ok = false;
        }
        if outcomes.iter().any(|o| o.cache_misses != 0) {
            println!(
                "FAIL: {}: a stencil fell back to the inspector",
                strategy.name()
            );
            ok = false;
        }

        let row = ExperimentRow {
            machine: format!("{} ", strategy.name()),
            nprocs,
            mesh_side: side,
            mesh_nodes: side * side,
            sweeps: config.total_sweeps(),
            times: PhaseBreakdown {
                total: outcomes.iter().map(|o| o.total_time).fold(0.0, f64::max),
                executor: outcomes.iter().map(|o| o.total_time).fold(0.0, f64::max),
                inspector: 0.0,
            },
            speedup: None,
            comm: CommReport {
                messages: stats.totals.msgs_sent,
                bytes: stats.totals.bytes_sent,
                nonlocal_refs: stats.totals.nonlocal_refs,
                halo_elements: outcomes
                    .iter()
                    .flat_map(|o| &o.phases)
                    .map(|p| p.halo_elements)
                    .sum(),
                queue_peak: stats.totals.queue_peak,
                wire_bytes: stats.totals.wire_bytes,
                ..CommReport::default()
            },
            final_change: None,
            phase_comms: phase_comm_reports(&outcomes),
        };
        println!("{}", row.to_comm_line());
        rows.push(row);
    }

    println!("\nper-phase breakdown (counters summed across ranks):");
    for row in &rows {
        println!("\n  strategy: {}", row.machine.trim());
        println!("  {}", ExperimentRow::phase_header());
        for line in row.to_phase_lines() {
            println!("  {line}");
        }
    }

    // The phase-change strategy must make both stencil phases message free,
    // with all traffic in the redistributions.
    let phase_change = &rows[1];
    for (label, comm) in &phase_change.phase_comms {
        if label != "redistribute" && comm.messages != 0 {
            println!(
                "FAIL: phase-change {label} phase sent {} messages",
                comm.messages
            );
            ok = false;
        }
        if label == "redistribute" && comm.messages == 0 && nprocs > 1 {
            println!("FAIL: the redistributions never moved the field");
            ok = false;
        }
    }

    if ok {
        println!(
            "\nOK: [block, *] affine stencils plan with zero inspector messages, indirect \
             references fall back to the cached inspector, and both strategies match the \
             sequential replay bit for bit on both backends"
        );
    }
    ok
}

/// Run the Session & typed-reduction solver experiment (`table_solvers`)
/// and print its tables: conjugate gradient (three interleaved loops, two
/// dot-product reductions per iteration) and red–black Gauss–Seidel (two
/// stripe loops sharing one session cache) over a partitioned scrambled
/// mesh, on both backends.
///
/// Asserted claims:
///
/// * **bit-identical histories** — CG residual history and red–black change
///   history agree bit for bit across dmsim, native and the sequential
///   replays;
/// * **inspector amortisation** — CG's inspector cost per iteration falls
///   as the iteration count grows (the mat-vec is inspected once, then the
///   cache serves every iteration);
/// * **per-reduction message accounting** — every reduction is exactly the
///   tree allreduce's `2(P−1)` machine-wide messages of 8 bytes: the dmsim
///   counter delta between a checked and an unchecked red–black run matches
///   the session's reduction count exactly.
///
/// Returns `true` when every claim holds; the binary exits nonzero
/// otherwise (CI runs it with `--smoke`).
pub fn run_solvers(smoke: bool) -> bool {
    use dmsim::{CostModel, Machine};
    use kali_native::NativeMachine;
    use solvers::{
        cg_sequential, cg_solve, partitioned_dist, redblack_sequential, redblack_sweeps, CgConfig,
        RedBlackConfig,
    };

    let (side, nprocs, cg_iters, rb_sweeps) = if smoke {
        (10, 4, 8, 8)
    } else {
        (32, 8, 40, 60)
    };
    let mut ok = true;
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();

    let mesh = meshes::UnstructuredMeshBuilder::new(side, side)
        .seed(1990)
        .scramble_numbering(true)
        .build();
    let b: Vec<f64> = (0..mesh.len())
        .map(|i| ((i * 17) % 13) as f64 * 0.25 - 1.0)
        .collect();
    let replay_dist = distrib::DimDist::custom(meshes::greedy_partition(&mesh, nprocs), nprocs);

    println!(
        "\n=== Session & typed reductions: solvers on a partitioned {side}x{side} scrambled \
         mesh (NCUBE/7, {nprocs} processors) ==="
    );

    // ---- Conjugate gradient ------------------------------------------------
    let config = CgConfig::with_iters(cg_iters);
    let machine = Machine::new(nprocs, CostModel::ncube7());
    let (outcomes, _stats) = machine.run_stats(|proc| {
        let dist = partitioned_dist(proc, &mesh);
        cg_solve(proc, &mesh, &dist, &b, &config)
    });
    let native_outcomes = NativeMachine::new(nprocs).run(|proc| {
        let dist = partitioned_dist(proc, &mesh);
        cg_solve(proc, &mesh, &dist, &b, &config)
    });
    let (_, seq_history) = cg_sequential(&mesh, &b, &config, &replay_dist);

    let o = &outcomes[0];
    let iters = o.iterations.max(1);
    let reductions_per_rank = o.stats.reductions;
    let reduction_msgs = reductions_per_rank * 2 * (nprocs as u64 - 1);
    let inspector = outcomes
        .iter()
        .map(|x| x.inspector_time)
        .fold(0.0f64, f64::max);
    println!(
        "\nconjugate gradient: {} iterations, residual {:.3e} -> {:.3e}",
        o.iterations,
        o.residual_history[0],
        o.residual_history.last().unwrap()
    );
    println!(
        "{:>14}  {:>16}  {:>18}  {:>13}  {:>15}  {:>10}  {:>6}",
        "reductions",
        "reductions/iter",
        "reduce msgs total",
        "inspector (s)",
        "inspector/iter",
        "cache hit",
        "miss"
    );
    println!(
        "{:>14}  {:>16.2}  {:>18}  {:>13.4}  {:>15.6}  {:>10}  {:>6}",
        reductions_per_rank,
        (reductions_per_rank as f64 - 1.0) / iters as f64, // minus the initial ⟨b,b⟩
        reduction_msgs,
        inspector,
        inspector / iters as f64,
        outcomes.iter().map(|x| x.stats.cache.hits).sum::<u64>(),
        outcomes.iter().map(|x| x.stats.cache.misses).sum::<u64>(),
    );

    let convergence_factor = if smoke { 1e-3 } else { 1e-10 };
    if o.residual_history.last().unwrap() >= &(o.residual_history[0] * convergence_factor) {
        println!("FAIL: CG did not converge on the partitioned mesh");
        ok = false;
    }
    if native_outcomes
        .iter()
        .any(|n| bits(&n.residual_history) != bits(&o.residual_history))
    {
        println!("FAIL: CG residual history diverges between dmsim and native");
        ok = false;
    }
    if bits(&o.residual_history) != bits(&seq_history) {
        println!("FAIL: CG residual history diverges from the sequential replay");
        ok = false;
    }
    if o.stats.cache.misses != 1 {
        println!(
            "FAIL: the static-mesh mat-vec must inspect exactly once, saw {}",
            o.stats.cache.misses
        );
        ok = false;
    }

    // Amortisation: a run 4x as long pays (nearly) the same inspector cost,
    // so the per-iteration share must fall strictly.
    let short = CgConfig::with_iters((cg_iters / 4).max(1));
    let short_outcomes = Machine::new(nprocs, CostModel::ncube7()).run(|proc| {
        let dist = partitioned_dist(proc, &mesh);
        cg_solve(proc, &mesh, &dist, &b, &short)
    });
    let short_inspector = short_outcomes
        .iter()
        .map(|x| x.inspector_time)
        .fold(0.0f64, f64::max);
    let short_per_iter = short_inspector / short.iters as f64;
    let long_per_iter = inspector / iters as f64;
    println!(
        "inspector amortisation: {:.6} s/iter over {} iters vs {:.6} s/iter over {} iters",
        short_per_iter, short.iters, long_per_iter, iters
    );
    if long_per_iter >= short_per_iter {
        println!("FAIL: inspector cost per iteration must fall as iterations grow");
        ok = false;
    }

    // ---- Red–black Gauss–Seidel -------------------------------------------
    let checked = RedBlackConfig {
        sweeps: rb_sweeps,
        check_every: Some(1),
        ..RedBlackConfig::default()
    };
    let unchecked = RedBlackConfig {
        check_every: None,
        ..checked
    };
    let machine = Machine::new(nprocs, CostModel::ncube7());
    let (rb_outcomes, rb_stats) = machine.run_stats(|proc| {
        let dist = partitioned_dist(proc, &mesh);
        redblack_sweeps(proc, &mesh, &dist, &b, &checked)
    });
    let (_rb_quiet, quiet_stats) = Machine::new(nprocs, CostModel::ncube7()).run_stats(|proc| {
        let dist = partitioned_dist(proc, &mesh);
        redblack_sweeps(proc, &mesh, &dist, &b, &unchecked)
    });
    let rb_native = NativeMachine::new(nprocs).run(|proc| {
        let dist = partitioned_dist(proc, &mesh);
        redblack_sweeps(proc, &mesh, &dist, &b, &checked)
    });
    let (_, rb_seq_history) = redblack_sequential(&mesh, &b, &checked, &replay_dist);

    let rb = &rb_outcomes[0];
    println!(
        "\nred-black Gauss-Seidel: {} sweeps, change norm {:.3e} -> {:.3e}",
        rb_sweeps,
        rb.change_history[0],
        rb.change_history.last().unwrap()
    );
    println!(
        "{:>14}  {:>12}  {:>12}  {:>10}  {:>6}  {:>14}  {:>16}",
        "reductions",
        "red halo",
        "black halo",
        "cache hit",
        "miss",
        "msgs (checked)",
        "msgs (unchecked)"
    );
    println!(
        "{:>14}  {:>12}  {:>12}  {:>10}  {:>6}  {:>14}  {:>16}",
        rb.stats.reductions,
        rb_outcomes
            .iter()
            .map(|x| x.red_recv_elements)
            .sum::<usize>(),
        rb_outcomes
            .iter()
            .map(|x| x.black_recv_elements)
            .sum::<usize>(),
        rb_outcomes.iter().map(|x| x.stats.cache.hits).sum::<u64>(),
        rb_outcomes
            .iter()
            .map(|x| x.stats.cache.misses)
            .sum::<u64>(),
        rb_stats.totals.msgs_sent,
        quiet_stats.totals.msgs_sent,
    );

    if rb.stats.cache.misses != 2 || rb.stats.loops_allocated != 2 {
        println!("FAIL: the two colour loops must each inspect once into one shared cache");
        ok = false;
    }
    if rb.change_history.last().unwrap() >= &rb.change_history[0] {
        println!("FAIL: red-black change norm did not fall");
        ok = false;
    }
    for n in rb_native.iter() {
        if bits(&n.change_history) != bits(&rb.change_history) {
            println!("FAIL: red-black change history diverges between dmsim and native");
            ok = false;
            break;
        }
    }
    if bits(&rb.change_history) != bits(&rb_seq_history) {
        println!("FAIL: red-black change history diverges from the sequential replay");
        ok = false;
    }

    // Per-reduction message accounting: the counter delta between the
    // checked and unchecked runs is exactly the tree's 2(P−1) messages of 8
    // bytes per reduction performed (the flat allgather-fold this replaced
    // cost P·(P−1)).
    let machine_reductions: u64 = rb_outcomes.iter().map(|x| x.stats.reductions).sum();
    let expected_msgs = (machine_reductions / nprocs as u64) * 2 * (nprocs as u64 - 1);
    let msg_delta = rb_stats.totals.msgs_sent - quiet_stats.totals.msgs_sent;
    let byte_delta = rb_stats.totals.bytes_sent - quiet_stats.totals.bytes_sent;
    println!(
        "per-reduction accounting: {} reductions -> {} messages / {} bytes (expected {} / {})",
        machine_reductions / nprocs as u64,
        msg_delta,
        byte_delta,
        expected_msgs,
        expected_msgs * 8,
    );
    if msg_delta != expected_msgs || byte_delta != expected_msgs * 8 {
        println!("FAIL: reduction messages are not accounted exactly");
        ok = false;
    }

    if ok {
        println!(
            "\nOK: CG and red-black converge with bit-identical histories across dmsim, native \
             and the sequential replays; the inspector amortises across iterations; and every \
             reduction's messages are accounted exactly"
        );
    }
    ok
}

/// Run the communication fast-path experiment (`table_collectives`) and
/// print its tables: the measured machine-wide message cost of one tree
/// allreduce against the flat allgather-fold it replaced (and the
/// recursive-doubling allgather) across a processor sweep on the simulated
/// NCUBE/7, then the stripe planner's zero-message claim for red–black
/// planning on chain meshes.
///
/// Asserted claims:
///
/// * **tree scaling** — every allreduce costs exactly `2(P−1)` machine-wide
///   messages of 8 bytes at every P (the closed form
///   `tree_allreduce_messages`), while the measured flat allgather costs
///   `P·(P−1)` and recursive doubling `P·log₂P` at power-of-two P;
/// * **determinism** — the reduced value is bitwise identical on every
///   rank, across dmsim and native, and equal to the
///   `tree_combine_partials` sequential replay, at every P — including
///   non-powers of two, where the tree is ragged;
/// * **closed-form stripes** — red–black planning over a chain mesh runs
///   zero inspectors and sends zero messages under block and cyclic
///   distributions (simulated planning time 0), while a scrambled
///   unstructured mesh still pays the inspector's global exchange; the
///   chain fast path reproduces the sequential replay bit for bit on both
///   backends.
///
/// Returns `true` when every claim holds; the binary exits nonzero
/// otherwise (CI runs it with `--smoke`).
pub fn run_collectives(smoke: bool) -> bool {
    use dmsim::{CostModel, Machine};
    use kali_core::process::{tree_allreduce_messages, tree_combine_partials};
    use kali_core::{Process, Sum};
    use kali_native::NativeMachine;
    use solvers::{redblack_sequential, redblack_sweeps, RedBlackConfig};

    /// Rounding-sensitive per-rank contribution: rank 0 injects a huge
    /// addend so any change of bracketing changes the result bits.
    fn contribution(rank: usize, round: usize) -> f64 {
        if rank == 0 {
            1e16 + round as f64
        } else {
            1.0 + (rank * (round + 1)) as f64 * 1e-3
        }
    }

    let procs: &[usize] = if smoke {
        &[2, 3, 4, 8]
    } else {
        &[2, 3, 4, 8, 16, 32, 64]
    };
    let rounds = 6usize;
    let mut ok = true;
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();

    println!("\n=== Communication fast paths: collectives and closed-form stripes (NCUBE/7) ===");

    // ---- Claim 1: tree allreduce message scaling across P ------------------
    println!("\nmachine-wide messages per reduction ({rounds} reductions per run):");
    println!(
        "{:>4}  {:>14}  {:>12}  {:>16}  {:>16}  {:>10}",
        "P", "tree 2(P-1)", "bytes/red", "flat P*(P-1)", "doubling PlogP", "value"
    );
    for &p in procs {
        let machine = Machine::new(p, CostModel::ncube7());
        let (results, stats) = machine.run_stats(|proc| {
            (0..rounds)
                .map(|r| proc.allreduce_sum_f64(contribution(proc.rank(), r)))
                .collect::<Vec<f64>>()
        });
        let tree_msgs = stats.totals.msgs_sent / rounds as u64;
        let tree_bytes = stats.totals.bytes_sent / rounds as u64;

        // The sequential replay of the tree bracketing, per round.
        let replay: Vec<f64> = (0..rounds)
            .map(|r| tree_combine_partials::<Sum<f64>>((0..p).map(|rank| contribution(rank, r))))
            .collect();
        let native = NativeMachine::new(p).run(|proc| {
            (0..rounds)
                .map(|r| proc.allreduce_sum_f64(contribution(proc.rank(), r)))
                .collect::<Vec<f64>>()
        });
        let identical = results.iter().all(|r| bits(r) == bits(&replay))
            && native.iter().all(|r| bits(r) == bits(&replay));

        // Measured cost of the alternatives the tree replaced.
        let (_, flat_stats) = Machine::new(p, CostModel::ncube7()).run_stats(|proc| {
            let all = proc.allgather(vec![contribution(proc.rank(), 0)]);
            all.len()
        });
        let (_, dbl_stats) = Machine::new(p, CostModel::ncube7()).run_stats(|proc| {
            let all = proc.allgather_doubling(vec![contribution(proc.rank(), 0)]);
            all.len()
        });
        let flat_msgs = flat_stats.totals.msgs_sent;
        let dbl_msgs = dbl_stats.totals.msgs_sent;

        println!(
            "{:>4}  {:>14}  {:>12}  {:>16}  {:>16}  {:>10}",
            p,
            tree_msgs,
            tree_bytes,
            flat_msgs,
            dbl_msgs,
            if identical { "identical" } else { "DIVERGED" }
        );

        let expect_tree = tree_allreduce_messages(p) as u64;
        if tree_msgs != expect_tree || tree_bytes != expect_tree * 8 {
            println!(
                "FAIL: P={p}: tree allreduce must cost exactly {expect_tree} messages of 8 \
                 bytes, measured {tree_msgs} / {tree_bytes}"
            );
            ok = false;
        }
        if flat_msgs != (p * (p - 1)) as u64 {
            println!("FAIL: P={p}: flat allgather baseline must cost P*(P-1) messages");
            ok = false;
        }
        if p.is_power_of_two() && dbl_msgs != (p * p.trailing_zeros() as usize) as u64 {
            println!("FAIL: P={p}: recursive doubling must cost P*log2(P) messages");
            ok = false;
        }
        if !identical {
            println!(
                "FAIL: P={p}: reduced values must be bitwise identical across ranks, \
                 backends and the tree_combine_partials replay"
            );
            ok = false;
        }
    }

    // ---- Claim 2: closed-form stripe planning on chain meshes --------------
    let (side, nprocs, sweeps) = if smoke { (48, 4, 8) } else { (192, 8, 30) };
    let chain = meshes::RegularGrid::new(side, 1).five_point_mesh();
    let chain_b: Vec<f64> = (0..chain.len())
        .map(|i| ((i * 17) % 13) as f64 * 0.25 - 1.0)
        .collect();
    let scrambled = meshes::UnstructuredMeshBuilder::new(8, 8)
        .seed(1990)
        .scramble_numbering(true)
        .build();
    let scrambled_b: Vec<f64> = (0..scrambled.len())
        .map(|i| ((i * 17) % 13) as f64 * 0.25 - 1.0)
        .collect();
    let plan_only = RedBlackConfig {
        sweeps: 0, // the timed region then covers planning alone
        check_every: None,
        ..RedBlackConfig::default()
    };

    println!(
        "\nred-black planning cost on a {side}-node chain ({nprocs} processors; the scrambled \
         mesh row is the inspector fallback for contrast):"
    );
    println!(
        "{:>22}  {:>14}  {:>16}  {:>14}  {:>12}",
        "mesh / dist", "plan msgs", "inspector runs", "plan time (s)", "halo elems"
    );
    for (label, dist) in [
        (
            "chain / block",
            distrib::DimDist::block(chain.len(), nprocs),
        ),
        (
            "chain / cyclic",
            distrib::DimDist::cyclic(chain.len(), nprocs),
        ),
    ] {
        let machine = Machine::new(nprocs, CostModel::ncube7());
        let outcomes = machine.run(|proc| {
            let d = dist.clone();
            redblack_sweeps(proc, &chain, &d, &chain_b, &plan_only)
        });
        let plan_msgs: u64 = outcomes.iter().map(|o| o.counters.msgs_sent).sum();
        let inspector_runs: u64 = outcomes.iter().map(|o| o.stats.cache.misses).sum();
        let plan_time = outcomes
            .iter()
            .map(|o| o.inspector_time)
            .fold(0.0, f64::max);
        let halo: usize = outcomes
            .iter()
            .map(|o| o.red_recv_elements + o.black_recv_elements)
            .sum();
        println!(
            "{:>22}  {:>14}  {:>16}  {:>14.4}  {:>12}",
            label, plan_msgs, inspector_runs, plan_time, halo
        );
        if plan_msgs != 0 || inspector_runs != 0 || plan_time != 0.0 {
            println!("FAIL: {label}: chain-mesh planning must be message free with no inspector");
            ok = false;
        }
        if halo == 0 {
            println!("FAIL: {label}: the closed form must still produce real halo schedules");
            ok = false;
        }
        let native = NativeMachine::new(nprocs).run(|proc| {
            let d = dist.clone();
            redblack_sweeps(proc, &chain, &d, &chain_b, &plan_only)
        });
        if native.iter().any(|o| o.stats.cache.misses != 0) {
            println!("FAIL: {label}: the native backend fell back to the inspector");
            ok = false;
        }
    }
    {
        let dist = distrib::DimDist::block(scrambled.len(), nprocs);
        let machine = Machine::new(nprocs, CostModel::ncube7());
        let outcomes = machine.run(|proc| {
            let d = dist.clone();
            redblack_sweeps(proc, &scrambled, &d, &scrambled_b, &plan_only)
        });
        let plan_msgs: u64 = outcomes.iter().map(|o| o.counters.msgs_sent).sum();
        let inspector_runs: u64 = outcomes.iter().map(|o| o.stats.cache.misses).sum();
        let plan_time = outcomes
            .iter()
            .map(|o| o.inspector_time)
            .fold(0.0, f64::max);
        let halo: usize = outcomes
            .iter()
            .map(|o| o.red_recv_elements + o.black_recv_elements)
            .sum();
        println!(
            "{:>22}  {:>14}  {:>16}  {:>14.4}  {:>12}",
            "scrambled / block", plan_msgs, inspector_runs, plan_time, halo
        );
        if plan_msgs == 0 || outcomes.iter().any(|o| o.stats.cache.misses != 2) {
            println!(
                "FAIL: the scrambled mesh must pay the inspector's global exchange \
                 (two colour loops, one inspection each)"
            );
            ok = false;
        }
    }

    // The fast path is only a fast path if it computes the same bits: run
    // the chain solve properly and compare against native and the
    // sequential replay.
    let checked = RedBlackConfig {
        sweeps,
        check_every: Some(2),
        ..RedBlackConfig::default()
    };
    for dist in [
        distrib::DimDist::block(chain.len(), nprocs),
        distrib::DimDist::cyclic(chain.len(), nprocs),
    ] {
        let outcomes = Machine::new(nprocs, CostModel::ncube7()).run(|proc| {
            let d = dist.clone();
            redblack_sweeps(proc, &chain, &d, &chain_b, &checked)
        });
        let native = NativeMachine::new(nprocs).run(|proc| {
            let d = dist.clone();
            redblack_sweeps(proc, &chain, &d, &chain_b, &checked)
        });
        let (_, seq_history) = redblack_sequential(&chain, &chain_b, &checked, &dist);
        if outcomes
            .iter()
            .chain(native.iter())
            .any(|o| bits(&o.change_history) != bits(&seq_history))
        {
            println!("FAIL: the chain fast path diverged from the sequential replay");
            ok = false;
        }
    }
    println!(
        "chain solve over {sweeps} sweeps: change histories bitwise identical across dmsim, \
         native and the sequential replay under block and cyclic distributions"
    );

    if ok {
        println!(
            "\nOK: every allreduce is exactly 2(P-1) messages of 8 bytes with bitwise-identical \
             results across ranks, backends and the sequential replay; chain-mesh red-black \
             planning is message free on both backends while scrambled meshes still pay the \
             inspector"
        );
    }
    ok
}

/// Measure Figure 7 (NCUBE/7 processor sweep).
pub fn measure_fig7() -> Vec<ExperimentRow> {
    measure_procs_sweep(dmsim::CostModel::ncube7(), &[2, 4, 8, 16, 32, 64, 128])
}

/// Measure Figure 8 (iPSC/2 processor sweep).
pub fn measure_fig8() -> Vec<ExperimentRow> {
    measure_procs_sweep(dmsim::CostModel::ipsc2(), &[2, 4, 8, 16, 32])
}

fn measure_procs_sweep(cost: dmsim::CostModel, procs: &[usize]) -> Vec<ExperimentRow> {
    let quick = quick_mode();
    procs
        .iter()
        .map(|&p| {
            let mut params = solvers::ExperimentParams::paper_processor_row(cost.clone(), p);
            if quick {
                params.extrapolate_from = Some(2);
            }
            solvers::run_jacobi_experiment(&params)
        })
        .collect()
}

/// Measure Figure 9 (NCUBE/7 mesh-size sweep on 128 processors).
pub fn measure_fig9() -> Vec<ExperimentRow> {
    measure_mesh_sweep(dmsim::CostModel::ncube7(), 128)
}

/// Measure Figure 10 (iPSC/2 mesh-size sweep on 32 processors).
pub fn measure_fig10() -> Vec<ExperimentRow> {
    measure_mesh_sweep(dmsim::CostModel::ipsc2(), 32)
}

fn measure_mesh_sweep(cost: dmsim::CostModel, nprocs: usize) -> Vec<ExperimentRow> {
    let quick = quick_mode();
    let sides: &[usize] = &[64, 128, 256, 512, 1024];
    sides
        .iter()
        .map(|&side| {
            let mut params =
                solvers::ExperimentParams::paper_meshsize_row(cost.clone(), nprocs, side);
            if quick || side >= 256 {
                params.extrapolate_from = Some(2);
            }
            solvers::run_jacobi_experiment(&params)
        })
        .collect()
}

/// Run the intra-rank scaling experiment (`table_native_scaling`) and print
/// its table: the same native Jacobi solve at worker-pool sizes 1, 2, 4 and
/// 8, with wall-clock time per configuration and speedup over the
/// single-worker run.  The fields of every configuration are compared bit
/// for bit — the worker pool is a performance knob, never a semantics knob.
///
/// Returns `true` when the fields are identical across all worker counts
/// and — **only when the host actually has ≥ 4 hardware threads and this is
/// not a smoke run** — the 4-worker configuration is at least 2× faster
/// than 1 worker.  On smaller hosts the speedup row is informational (a
/// 1-CPU machine cannot exhibit parallel speedup) and the binary still
/// reports the table honestly.
pub fn run_native_scaling(smoke: bool) -> bool {
    use kali_core::Process;
    use kali_native::NativeMachine;
    use solvers::{jacobi_sweeps, JacobiConfig};
    use std::time::Instant;

    let (side, nprocs, sweeps) = if smoke { (64, 2, 3) } else { (1024, 2, 5) };
    let grid = meshes::RegularGrid::square(side);
    let mesh = grid.five_point_mesh();
    let initial = grid.initial_field();
    let worker_counts = [1usize, 2, 4, 8];

    println!(
        "\n=== Intra-rank scaling: native Jacobi on a {side}x{side} grid \
         ({nprocs} processes, {sweeps} sweeps, chunked executor) ==="
    );
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host parallelism: {hw} hardware thread(s)\n");
    println!(
        "{:>8}  {:>12}  {:>10}  {:>14}",
        "workers", "wall (s)", "speedup", "field"
    );

    let mut ok = true;
    let mut baseline_fields: Option<Vec<Vec<u64>>> = None;
    let mut baseline_secs = 0.0f64;
    for &workers in &worker_counts {
        let config = JacobiConfig {
            sweeps,
            workers: Some(workers),
            ..JacobiConfig::default()
        };
        let start = Instant::now();
        let outcomes = NativeMachine::new(nprocs).run(|proc| {
            let dist = distrib::DimDist::block(mesh.len(), proc.nprocs());
            jacobi_sweeps(proc, &mesh, &dist, &initial, &config)
        });
        let secs = start.elapsed().as_secs_f64();
        let fields: Vec<Vec<u64>> = outcomes
            .iter()
            .map(|o| o.local_a.iter().map(|v| v.to_bits()).collect())
            .collect();
        let identical = match &baseline_fields {
            None => {
                baseline_fields = Some(fields);
                baseline_secs = secs;
                true
            }
            Some(base) => *base == fields,
        };
        if !identical {
            ok = false;
        }
        println!(
            "{:>8}  {:>12.3}  {:>9.2}x  {:>14}",
            workers,
            secs,
            baseline_secs / secs,
            if identical { "identical" } else { "DIVERGED" }
        );
    }

    if !ok {
        println!("\nFAIL: worker count changed the solution bits");
        return false;
    }
    println!("\nOK: fields bitwise identical at every worker count");
    if !smoke && hw >= 4 {
        // The acceptance threshold only means something when the hardware
        // can actually run 4 workers concurrently.
        let config = JacobiConfig {
            sweeps,
            workers: Some(4),
            ..JacobiConfig::default()
        };
        let start = Instant::now();
        let _ = NativeMachine::new(nprocs).run(|proc| {
            let dist = distrib::DimDist::block(mesh.len(), proc.nprocs());
            jacobi_sweeps(proc, &mesh, &dist, &initial, &config)
        });
        let four = start.elapsed().as_secs_f64();
        let speedup = baseline_secs / four;
        if speedup < 2.0 {
            println!("FAIL: expected >= 2x at 4 workers, measured {speedup:.2}x");
            ok = false;
        } else {
            println!("OK: {speedup:.2}x at 4 workers (threshold 2x)");
        }
    } else if hw < 4 {
        println!(
            "note: host has {hw} hardware thread(s); the 2x-at-4-workers \
             check needs >= 4 and was skipped"
        );
    }
    ok
}

/// Which reference pattern a planned loop of the verification sweep used —
/// enough for the driver to rebuild the same `refs_of` closure outside the
/// machine and re-check every planned reference against the schedule
/// ([`kali_core::verify::check_plan_refs`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RefPattern {
    /// Scrambled-mesh adjacency (jacobi relaxation, red–black halves).
    MeshAdj,
    /// Adjacency plus the diagonal (CG's matvec).
    MeshAdjSelf,
    /// Adjacency of the adaptively evolved mesh (post-adaptation replan).
    AdaptedAdj,
    /// The identity map (convergence / vector-update loops).
    Identity,
    /// The three-point chain stencil `i ∓ 1`, clipped at the ends (the
    /// red–black closed-form stripe planning).
    Chain,
}

impl RefPattern {
    fn name(self) -> &'static str {
        match self {
            RefPattern::MeshAdj => "mesh-adjacency",
            RefPattern::MeshAdjSelf => "matvec-adjacency",
            RefPattern::AdaptedAdj => "adapted-adjacency",
            RefPattern::Identity => "identity",
            RefPattern::Chain => "chain-stencil",
        }
    }
}

/// Plan every solver shape the repo ships — jacobi (inspector + closed-form
/// convergence), adaptive replanning, CG (matvec + updates), red–black
/// stripes (closed form and inspector) — on one rank under `dist`, and run
/// the two reductions the solvers interleave so the collective trace is
/// populated.  Returns the planned schedules (labelled with their reference
/// pattern), the session's collective trace, and this rank's result of a
/// live bracket-hash allreduce.
fn plan_solver_suite<P: kali_core::Process>(
    proc: &mut P,
    mesh: &meshes::AdjacencyMesh,
    adapted: &meshes::AdjacencyMesh,
    dist: &distrib::DimDist,
) -> (
    Vec<(RefPattern, kali_core::CommSchedule)>,
    Vec<kali_core::CollectiveCall>,
    u64,
) {
    use kali_core::verify::{bracket_leaf, BracketHash};
    use kali_core::{
        analyze_stripe, AffineMap, Norm2, Reduce, ReduceOp, Session, Stripe, StripeSpec, Sum,
    };

    let n = mesh.len();
    let rank = proc.rank();
    let mut session = Session::new();
    let mut planned = Vec::new();

    let mesh_refs = |i: usize, out: &mut Vec<usize>| {
        out.extend(mesh.neighbors(i).iter().map(|&j| j as usize));
    };
    let matvec_refs = |i: usize, out: &mut Vec<usize>| {
        out.push(i);
        out.extend(mesh.neighbors(i).iter().map(|&j| j as usize));
    };
    let adapted_refs = |i: usize, out: &mut Vec<usize>| {
        out.extend(adapted.neighbors(i).iter().map(|&j| j as usize));
    };

    // Jacobi: inspector-planned relaxation + closed-form convergence loop,
    // then the convergence-test reduction (first collective of the trace).
    let relax = session.loop_1d(n, dist.clone());
    let conv = session.loop_1d(n, dist.clone());
    planned.push((
        RefPattern::MeshAdj,
        (*session.plan_indirect(proc, &relax, dist, mesh_refs)).clone(),
    ));
    let conv_schedule = session.plan(proc, &conv, dist, &[AffineMap::identity()]);
    planned.push((RefPattern::Identity, (*conv_schedule).clone()));
    let local: Vec<f64> = (0..dist.local_count(rank))
        .map(|l| 0.125 * (dist.global_index(rank, l) as f64 + 1.0))
        .collect();
    session.execute_reduce(
        proc,
        &conv,
        &conv_schedule,
        dist,
        &local,
        Reduce::<Norm2>::new(),
        |i, fetch| fetch.fetch(i),
    );

    // Adaptive: the mesh evolved, the data version bumps, the same loop
    // replans against the new adjacency.
    session.bump_data_version();
    planned.push((
        RefPattern::AdaptedAdj,
        (*session.plan_indirect(proc, &relax, dist, adapted_refs)).clone(),
    ));

    // CG: matvec (diagonal + off-diagonals) and the affine update loop,
    // then a dot-product reduction (second collective of the trace).
    let matvec = session.loop_1d(n, dist.clone());
    let update = session.loop_1d(n, dist.clone());
    planned.push((
        RefPattern::MeshAdjSelf,
        (*session.plan_indirect(proc, &matvec, dist, matvec_refs)).clone(),
    ));
    let update_schedule = session.plan(proc, &update, dist, &[AffineMap::identity()]);
    planned.push((RefPattern::Identity, (*update_schedule).clone()));
    session.execute_reduce(
        proc,
        &update,
        &update_schedule,
        dist,
        &local,
        Reduce::<Sum<f64>>::new(),
        |i, fetch| {
            let v = fetch.fetch(i);
            v * v
        },
    );

    // Red–black: the chain mesh's zero-message closed-form stripe planning…
    for lo in [0usize, 1] {
        let spec = StripeSpec {
            lo,
            hi: n,
            step: 2,
            on_dist: dist.clone(),
            data_dist: dist.clone(),
            ref_maps: vec![AffineMap::shift(-1), AffineMap::shift(1)],
        };
        planned.push((
            RefPattern::Chain,
            analyze_stripe(&spec, rank)
                .expect("unit-stride stripe stencils always have a closed form"),
        ));
    }
    // …and the scrambled mesh's inspector path for both colour classes.
    let red = session.loop_over(Stripe::new(0, n, 2), dist.clone());
    let black = session.loop_over(Stripe::new(1, n, 2), dist.clone());
    planned.push((
        RefPattern::MeshAdj,
        (*session.plan_indirect(proc, &red, dist, mesh_refs)).clone(),
    ));
    planned.push((
        RefPattern::MeshAdj,
        (*session.plan_indirect(proc, &black, dist, mesh_refs)).clone(),
    ));

    // A live bracket-hash allreduce: the backend's collective must realise
    // exactly the contract bracketing (checked against the replay outside).
    let hash = proc.allreduce(bracket_leaf(rank), |a, b| BracketHash::combine(*a, *b));

    (planned, session.collective_trace().to_vec(), hash)
}

/// Run the static verification sweep (`verify_all`): every solver shape
/// under every distribution kind on both backends through
/// [`kali_core::verify`], plus the backend-independent protocol proofs
/// (tag windows, sweep-tag wrap, collective deadlock freedom, reduction
/// bracketing) and a live bracket-hash allreduce on each backend.
///
/// Prints one line per configuration and a violation summary; returns
/// `true` exactly when **zero** violations were found.
pub fn run_verify_all(smoke: bool) -> bool {
    use dmsim::{CostModel, Machine};
    use kali_core::process::tree_combine_partials;
    use kali_core::verify::{self, bracket_leaf, BracketHash, Violation};
    use kali_mp::MpMachine;
    use kali_native::NativeMachine;

    let (side, proc_counts, max_p): (usize, &[usize], usize) = if smoke {
        (8, &[2, 4], 33)
    } else {
        (12, &[2, 3, 4, 8], 65)
    };

    println!("\n=== Static verification sweep (kali_core::verify) ===");
    let mut violations: Vec<(String, Violation)> = Vec::new();
    let mut record = |context: String, found: Vec<Violation>| {
        let n = found.len();
        for v in found {
            violations.push((context.clone(), v));
        }
        n
    };

    // Backend-independent protocol proofs.
    println!("\n{:>42}  {:>10}", "protocol check", "violations");
    for (name, found) in [
        ("tag-window disjointness", verify::check_tag_windows()),
        (
            "sweep-tag wrap (1024 in flight)",
            verify::check_sweep_tag_wrap(1024),
        ),
        (
            "collective deadlock freedom",
            verify::check_collective_deadlock(max_p),
        ),
        (
            "reduction bracketing",
            verify::check_reduce_bracketing(max_p),
        ),
    ] {
        println!("{:>42}  {:>10}", name, found.len());
        record(name.to_string(), found);
    }

    // The solver/distribution/backend sweep.
    let mesh = meshes::UnstructuredMeshBuilder::new(side, side)
        .seed(1990)
        .scramble_numbering(true)
        .build();
    let adapted = meshes::evolve(&mesh, &meshes::AdaptConfig::default(), 2);
    let n = mesh.len();

    println!(
        "\n{:>8}  {:>8}  {:>14}  {:>6}  {:>8}  {:>10}",
        "backend", "procs", "dist", "loops", "records", "violations"
    );
    for &nprocs in proc_counts {
        let dists: Vec<(&str, distrib::DimDist)> = vec![
            ("block", distrib::DimDist::block(n, nprocs)),
            ("cyclic", distrib::DimDist::cyclic(n, nprocs)),
            ("block-cyclic", distrib::DimDist::block_cyclic(n, nprocs, 3)),
            (
                "irregular",
                distrib::DimDist::custom(meshes::greedy_partition(&mesh, nprocs), nprocs),
            ),
        ];
        for (dist_name, dist) in dists {
            for backend in ["dmsim", "native", "mp"] {
                let results = match backend {
                    "dmsim" => Machine::new(nprocs, CostModel::ideal())
                        .run(|proc| plan_solver_suite(proc, &mesh, &adapted, &dist)),
                    "native" => NativeMachine::new(nprocs)
                        .run(|proc| plan_solver_suite(proc, &mesh, &adapted, &dist)),
                    // Socket transport, threads as rank containers: the
                    // plan/schedule results are not `Wire`, so the sweep
                    // uses the embedder mode rather than real processes.
                    _ => MpMachine::new(nprocs)
                        .run_threads(|proc| plan_solver_suite(proc, &mesh, &adapted, &dist)),
                };
                let context = format!("{backend} P={nprocs} {dist_name}");
                let mut found_here = 0usize;
                let mut records = 0usize;

                // Every planned loop: per-set structural + duality +
                // deadlock checks, then the reference-resolution proof with
                // the same refs the plan was built from.
                let nloops = results[0].0.len();
                for k in 0..nloops {
                    let pattern = results[0].0[k].0;
                    let set: Vec<kali_core::CommSchedule> =
                        results.iter().map(|r| r.0[k].1.clone()).collect();
                    records += set.iter().map(|s| s.range_count()).sum::<usize>();
                    let mut found = verify::check_schedule_set(&set);
                    for s in &set {
                        found.extend(match pattern {
                            RefPattern::MeshAdj => verify::check_plan_refs(s, &dist, |i, out| {
                                out.extend(mesh.neighbors(i).iter().map(|&j| j as usize));
                            }),
                            RefPattern::MeshAdjSelf => {
                                verify::check_plan_refs(s, &dist, |i, out| {
                                    out.push(i);
                                    out.extend(mesh.neighbors(i).iter().map(|&j| j as usize));
                                })
                            }
                            RefPattern::AdaptedAdj => {
                                verify::check_plan_refs(s, &dist, |i, out| {
                                    out.extend(adapted.neighbors(i).iter().map(|&j| j as usize));
                                })
                            }
                            RefPattern::Identity => {
                                verify::check_plan_refs(s, &dist, |i, out| out.push(i))
                            }
                            RefPattern::Chain => verify::check_plan_refs(s, &dist, |i, out| {
                                if i > 0 {
                                    out.push(i - 1);
                                }
                                if i + 1 < n {
                                    out.push(i + 1);
                                }
                            }),
                        });
                    }
                    found_here += record(format!("{context} loop#{k} {}", pattern.name()), found);
                }

                // SPMD conformance: the collective traces must be
                // rank-invariant.
                let traces: Vec<Vec<kali_core::CollectiveCall>> =
                    results.iter().map(|r| r.1.clone()).collect();
                found_here += record(
                    format!("{context} collective sequence"),
                    verify::check_collective_sequence(&traces),
                );

                // Determinism contract, live: the backend's allreduce must
                // produce the replay bracketing's hash on every rank.
                let expected = tree_combine_partials::<BracketHash>((0..nprocs).map(bracket_leaf));
                for (rank, r) in results.iter().enumerate() {
                    if r.2 != expected {
                        found_here += record(
                            format!("{context} live allreduce"),
                            vec![Violation::BracketingMismatch {
                                nprocs,
                                rank: Some(rank),
                                expected,
                                found: r.2,
                            }],
                        );
                    }
                }

                println!(
                    "{:>8}  {:>8}  {:>14}  {:>6}  {:>8}  {:>10}",
                    backend, nprocs, dist_name, nloops, records, found_here
                );
            }
        }
    }

    if violations.is_empty() {
        println!("\nOK: zero violations across the sweep");
        true
    } else {
        println!("\nFAIL: {} violation(s):", violations.len());
        for (context, v) in &violations {
            println!("  [{context}] {v}");
        }
        false
    }
}

/// Which solver a model-checking run exercises.
#[derive(Clone, Copy)]
enum McSolver {
    /// Chunked Jacobi with per-sweep convergence checks.
    Jacobi,
    /// Adaptive Jacobi with rebalancing redistribution.
    Adaptive,
    /// Conjugate gradient (reduction-heavy).
    Cg,
    /// Red–black Gauss–Seidel (two executor phases per sweep).
    RedBlack,
}

impl McSolver {
    const ALL: [McSolver; 4] = [
        McSolver::Jacobi,
        McSolver::Adaptive,
        McSolver::Cg,
        McSolver::RedBlack,
    ];

    fn name(self) -> &'static str {
        match self {
            McSolver::Jacobi => "jacobi",
            McSolver::Adaptive => "adaptive",
            McSolver::Cg => "cg",
            McSolver::RedBlack => "red-black",
        }
    }
}

/// One model-checking workload: the mesh/distribution pair plus the input
/// fields and sweep count that every run of the configuration shares.
struct McCase<'a> {
    mesh: &'a meshes::AdjacencyMesh,
    dist: &'a distrib::DimDist,
    initial: &'a [f64],
    b: &'a [f64],
    sweeps: usize,
}

/// Run one solver under `dist`, optionally recording an event trace, and
/// reduce the outcome to its delivery-order-invariant fingerprint.
///
/// The first vector holds everything the determinism contract pins bit for
/// bit on both backends: field values, reduction histories and structural
/// counts.  The second holds the deterministic dmsim traffic counters
/// (compared across delivery policies only — the native backend charges no
/// simulated costs).  Simulated clocks and the pending-queue high-water
/// mark are deliberately excluded: both may legally move when wildcard
/// deliveries are reordered.
fn mc_run_one<P: kali_core::Process>(
    proc: &mut P,
    solver: McSolver,
    case: &McCase,
    traced: bool,
) -> (Vec<u64>, Vec<u64>, Vec<kali_core::process::Event>) {
    let &McCase {
        mesh,
        dist,
        initial,
        b,
        sweeps,
    } = case;
    use solvers::{
        adaptive_jacobi_sweeps, cg_solve, jacobi_sweeps, redblack_sweeps, AdaptiveConfig, CgConfig,
        JacobiConfig, RedBlackConfig,
    };

    if traced {
        proc.trace_start();
    }
    fn bits(v: &[f64]) -> impl Iterator<Item = u64> + '_ {
        v.iter().map(|x| x.to_bits())
    }
    let mut fp: Vec<u64> = Vec::new();
    let counters = match solver {
        McSolver::Jacobi => {
            let config = JacobiConfig {
                sweeps,
                convergence_check_every: Some(1),
                workers: Some(2),
                chunk: Some(8),
                ..JacobiConfig::default()
            };
            let o = jacobi_sweeps(proc, mesh, dist, initial, &config);
            fp.extend(bits(&o.local_a));
            fp.extend(bits(&o.change_history));
            fp.push(o.global_change.map_or(0, f64::to_bits));
            fp.extend([
                o.reductions,
                o.reduction_bytes,
                o.recv_elements as u64,
                o.recv_partners as u64,
                o.schedule_ranges as u64,
                o.cache_hits,
                o.cache_misses,
            ]);
            o.counters
        }
        McSolver::Adaptive => {
            let config = AdaptiveConfig {
                sweeps,
                adapt_every: Some(2),
                rebalance: true,
                cache_capacity: 4,
                ..AdaptiveConfig::default()
            };
            let o = adaptive_jacobi_sweeps(proc, mesh, dist, initial, &config);
            fp.extend(bits(&o.local_a));
            fp.extend([
                o.adaptations,
                o.cache_hits,
                o.cache_misses,
                o.cache_evictions,
            ]);
            o.counters
        }
        McSolver::Cg => {
            let config = CgConfig::with_iters(sweeps);
            let o = cg_solve(proc, mesh, dist, b, &config);
            fp.extend(bits(&o.local_x));
            fp.extend(bits(&o.residual_history));
            fp.extend([
                o.iterations as u64,
                o.adaptations,
                o.stats.reductions,
                o.recv_elements as u64,
                o.schedule_ranges as u64,
            ]);
            o.counters
        }
        McSolver::RedBlack => {
            let config = RedBlackConfig {
                sweeps,
                check_every: Some(1),
                ..RedBlackConfig::default()
            };
            let o = redblack_sweeps(proc, mesh, dist, b, &config);
            fp.extend(bits(&o.local_a));
            fp.extend(bits(&o.change_history));
            fp.extend([
                o.stats.reductions,
                o.red_recv_elements as u64,
                o.black_recv_elements as u64,
            ]);
            o.counters
        }
    };
    let comm = vec![
        counters.msgs_sent,
        counters.msgs_recv,
        counters.bytes_sent,
        counters.bytes_recv,
        counters.nonlocal_refs,
    ];
    let trace = if traced {
        proc.trace_take()
    } else {
        Vec::new()
    };
    (fp, comm, trace)
}

/// Run the trace-level model-checking sweep (`mc_all`): every solver under
/// every distribution kind, on both backends.
///
/// Each configuration runs four checks:
///
/// 1. a traced dmsim FIFO baseline whose recorded event trace must pass
///    `kali_core::mc::check_trace` with zero happens-before violations;
/// 2. re-executions under perturbed wildcard-delivery policies (LIFO, two
///    seeded shuffles, systematic rotation) whose solver outcomes must be
///    bitwise identical to the baseline — fields, histories and
///    deterministic counters, with simulated clocks and the queue
///    high-water mark excluded as legitimately order-dependent;
/// 3. a traced native-backend run whose trace must also pass the analyzer
///    and whose fields must match the dmsim baseline bit for bit;
/// 4. a sweep-wide assertion that the chunked executor emitted chunk-claim
///    events (so the write-sink conflict check actually ran on real data).
///
/// Prints one line per configuration and a failure summary; returns `true`
/// exactly when **zero** violations and **zero** divergences were found.
pub fn run_mc_all(smoke: bool) -> bool {
    use dmsim::{CostModel, DeliveryPolicy, Machine};
    use kali_core::process::EventKind;
    use kali_mp::MpMachine;
    use kali_native::NativeMachine;

    let (side, proc_counts, sweeps): (usize, &[usize], usize) = if smoke {
        (8, &[2, 4], 4)
    } else {
        (12, &[2, 4, 8], 8)
    };

    println!("\n=== Trace-level model checking (kali_core::mc + dmsim delivery orders) ===");

    let mesh = meshes::UnstructuredMeshBuilder::new(side, side)
        .seed(1990)
        .scramble_numbering(true)
        .build();
    let n = mesh.len();
    let initial: Vec<f64> = (0..n).map(|i| ((i * 29) % 23) as f64 * 0.1).collect();
    let b: Vec<f64> = (0..n)
        .map(|i| ((i * 17) % 13) as f64 * 0.25 - 1.0)
        .collect();

    let policies: [(&str, DeliveryPolicy); 4] = [
        ("lifo", DeliveryPolicy::Lifo),
        ("shuffle#a5", DeliveryPolicy::Shuffle(0xA5)),
        ("shuffle#1990", DeliveryPolicy::Shuffle(1990)),
        ("systematic", DeliveryPolicy::Systematic(1)),
    ];

    let mut failures: Vec<String> = Vec::new();
    let mut chunk_claims = 0usize;
    let mut events_total = 0usize;

    println!(
        "\n{:>8}  {:>14}  {:>10}  {:>8}  {:>8}  {:>10}  {:>8}  {:>8}",
        "procs", "dist", "solver", "events", "hb", "policies", "native", "mp"
    );
    for &nprocs in proc_counts {
        let dists: Vec<(&str, distrib::DimDist)> = vec![
            ("block", distrib::DimDist::block(n, nprocs)),
            ("cyclic", distrib::DimDist::cyclic(n, nprocs)),
            ("block-cyclic", distrib::DimDist::block_cyclic(n, nprocs, 3)),
            (
                "irregular",
                distrib::DimDist::custom(meshes::greedy_partition(&mesh, nprocs), nprocs),
            ),
        ];
        for (dist_name, dist) in dists {
            for solver in McSolver::ALL {
                let context = format!("P={nprocs} {dist_name} {}", solver.name());
                let case = McCase {
                    mesh: &mesh,
                    dist: &dist,
                    initial: &initial,
                    b: &b,
                    sweeps,
                };

                // 1. FIFO baseline on dmsim, traced and analyzed.
                let base = Machine::new(nprocs, CostModel::ideal())
                    .run(|proc| mc_run_one(proc, solver, &case, true));
                let traces: Vec<Vec<kali_core::process::Event>> =
                    base.iter().map(|r| r.2.clone()).collect();
                events_total += traces.iter().map(Vec::len).sum::<usize>();
                chunk_claims += traces
                    .iter()
                    .flatten()
                    .filter(|e| matches!(e.kind, EventKind::ChunkClaim { .. }))
                    .count();
                let hb = kali_core::mc::check_trace(&traces);
                let hb_found = hb.len();
                for v in hb {
                    failures.push(format!("[{context}] dmsim trace: {v}"));
                }

                // 2. Perturbed delivery orders must not change the answer.
                let mut policy_div = 0usize;
                for (pname, policy) in policies {
                    let run = Machine::new(nprocs, CostModel::ideal())
                        .with_delivery(policy)
                        .run(|proc| mc_run_one(proc, solver, &case, false));
                    for (rank, (base_r, run_r)) in base.iter().zip(&run).enumerate() {
                        if run_r.0 != base_r.0 || run_r.1 != base_r.1 {
                            policy_div += 1;
                            failures.push(format!(
                                "[{context}] delivery policy {pname} diverges from FIFO on \
                                 rank {rank}"
                            ));
                        }
                    }
                }

                // 3. Native backend: trace passes, fields match dmsim.
                let native =
                    NativeMachine::new(nprocs).run(|proc| mc_run_one(proc, solver, &case, true));
                let native_traces: Vec<Vec<kali_core::process::Event>> =
                    native.iter().map(|r| r.2.clone()).collect();
                let native_hb = kali_core::mc::check_trace(&native_traces);
                let mut native_bad = native_hb.len();
                for v in native_hb {
                    failures.push(format!("[{context}] native trace: {v}"));
                }
                for (rank, (base_r, nat_r)) in base.iter().zip(&native).enumerate() {
                    if nat_r.0 != base_r.0 {
                        native_bad += 1;
                        failures.push(format!(
                            "[{context}] native fields diverge from dmsim on rank {rank}"
                        ));
                    }
                }

                // 4. Multi-process socket backend: trace passes, fields
                //    match dmsim.  Threads-as-ranks mode — every message
                //    still crosses a Unix-domain socket, but the traced
                //    results stay in-process for comparison.
                let mp = MpMachine::new(nprocs)
                    .run_threads(|proc| mc_run_one(proc, solver, &case, true));
                let mp_traces: Vec<Vec<kali_core::process::Event>> =
                    mp.iter().map(|r| r.2.clone()).collect();
                let mp_hb = kali_core::mc::check_trace(&mp_traces);
                let mut mp_bad = mp_hb.len();
                for v in mp_hb {
                    failures.push(format!("[{context}] mp trace: {v}"));
                }
                for (rank, (base_r, mp_r)) in base.iter().zip(&mp).enumerate() {
                    if mp_r.0 != base_r.0 {
                        mp_bad += 1;
                        failures.push(format!(
                            "[{context}] mp fields diverge from dmsim on rank {rank}"
                        ));
                    }
                }

                println!(
                    "{:>8}  {:>14}  {:>10}  {:>8}  {:>8}  {:>10}  {:>8}  {:>8}",
                    nprocs,
                    dist_name,
                    solver.name(),
                    traces.iter().map(Vec::len).sum::<usize>(),
                    hb_found,
                    policy_div,
                    native_bad,
                    mp_bad
                );
            }
        }
    }

    // 4. The chunked executor must actually have run under tracing.
    if chunk_claims == 0 {
        failures.push(
            "no chunk-claim events recorded — the chunked executor was not exercised".to_string(),
        );
    }

    if failures.is_empty() {
        println!(
            "\nOK: {events_total} events analyzed ({chunk_claims} chunk claims), zero \
             violations, zero divergences"
        );
        true
    } else {
        println!("\nFAIL: {} problem(s):", failures.len());
        for f in &failures {
            println!("  {f}");
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tables_are_internally_consistent() {
        for rows in [
            PAPER_FIG7_NCUBE_PROCS,
            PAPER_FIG8_IPSC_PROCS,
            PAPER_FIG9_NCUBE_MESH,
            PAPER_FIG10_IPSC_MESH,
        ] {
            for r in rows {
                // total ≈ executor + inspector (rounding in the paper).
                assert!((r.total - r.executor - r.inspector).abs() < 0.11, "{r:?}");
            }
        }
    }

    #[test]
    fn paper_ncube_inspector_curve_is_u_shaped() {
        let inspector: Vec<f64> = PAPER_FIG7_NCUBE_PROCS.iter().map(|r| r.inspector).collect();
        let min = inspector.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(inspector[0] > min);
        assert!(inspector[inspector.len() - 1] > min);
    }
}
