//! One Criterion benchmark per paper table (Figures 7–10).
//!
//! These run scaled-down configurations (few sweeps, the exact extrapolation
//! described in `solvers::experiment`) so that `cargo bench` stays quick;
//! the full-size tables with the paper's parameters are produced by the
//! `table_*` binaries (`cargo run --release -p bench-tables --bin table_all`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmsim::CostModel;
use solvers::{run_jacobi_experiment, ExperimentParams};

fn row(cost: CostModel, nprocs: usize, mesh_side: usize, speedup: bool) -> ExperimentParams {
    ExperimentParams {
        cost,
        nprocs,
        mesh_side,
        sweeps: 100,
        compute_speedup: speedup,
        extrapolate_from: Some(2),
        overlap: true,
        disable_schedule_cache: false,
        convergence_check_every: None,
    }
}

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_tables");
    group.sample_size(10);

    // Figure 7 / Figure 8: processor sweeps at a fixed 128x128 mesh
    // (benchmarked at two representative processor counts each).
    for (name, cost, procs) in [
        ("fig7_ncube_procs", CostModel::ncube7(), vec![4usize, 32]),
        ("fig8_ipsc_procs", CostModel::ipsc2(), vec![4, 32]),
    ] {
        for &p in &procs {
            group.bench_with_input(BenchmarkId::new(name, p), &p, |b, &p| {
                b.iter(|| {
                    run_jacobi_experiment(&row(cost.clone(), p, 128, false))
                        .times
                        .total
                })
            });
        }
    }

    // Figure 9 / Figure 10: mesh-size sweeps at the paper's processor count
    // (benchmarked at two representative mesh sizes each).
    for (name, cost, procs) in [
        ("fig9_ncube_meshsize", CostModel::ncube7(), 128usize),
        ("fig10_ipsc_meshsize", CostModel::ipsc2(), 32usize),
    ] {
        for side in [64usize, 256] {
            group.bench_with_input(BenchmarkId::new(name, side), &side, |b, &side| {
                b.iter(|| {
                    run_jacobi_experiment(&row(cost.clone(), procs, side, true))
                        .speedup
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
