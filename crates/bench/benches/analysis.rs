//! Ablation A4: compile-time (closed-form) analysis vs the run-time
//! inspector for the same affine loop (§3.2).
//!
//! The compile-time path does interval algebra per processor; the inspector
//! touches every reference.  The gap grows linearly with the loop length.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use distrib::DimDist;
use dmsim::{CostModel, Machine};
use kali_core::analysis::{analyze, LoopSpec};
use kali_core::inspector::owner_computes_iters;
use kali_core::{run_inspector, AffineMap};

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis");
    for &n in &[4_096usize, 65_536] {
        let p = 8usize;
        // Compile-time closed form: pure local computation, measured on the
        // host without the simulator.
        let spec = LoopSpec::on_owner(
            n - 1,
            DimDist::block(n, p),
            vec![AffineMap::shift(-1), AffineMap::shift(1)],
        );
        group.bench_with_input(
            BenchmarkId::new("compile_time_closed_form", n),
            &n,
            |b, _| {
                b.iter(|| {
                    let mut total = 0usize;
                    for rank in 0..p {
                        let s = analyze(black_box(&spec), rank).unwrap();
                        total += s.recv_len;
                    }
                    total
                })
            },
        );
        // Run-time inspector for the same references (per-element checking +
        // crystal-router exchange on the simulated machine).
        let machine = Machine::new(p, CostModel::ideal());
        group.bench_with_input(BenchmarkId::new("runtime_inspector", n), &n, |b, _| {
            b.iter(|| {
                machine.run(|proc| {
                    let dist = DimDist::block(n, proc.nprocs());
                    let exec = owner_computes_iters(&dist, proc.rank(), n - 1);
                    let s = run_inspector(proc, &dist, &exec, |i, refs| {
                        if i > 0 {
                            refs.push(i - 1);
                        }
                        refs.push(i + 1);
                    });
                    s.recv_len
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
