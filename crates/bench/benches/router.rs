//! Ablation A2: crystal router vs naive direct all-to-all exchange.
//!
//! The paper uses "a variant of Fox's Crystal router" so that turning
//! receive lists into send lists does not create bottlenecks (§3.3).  This
//! bench measures host wall-clock of both exchanges on the simulator for a
//! boundary-exchange-like traffic pattern, and the simulated time each one
//! accrues is checked in the integration tests.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmsim::{collectives, CostModel, Machine};

/// Traffic: every processor sends a small record to each of its two ring
/// neighbours (the shape of the inspector's record exchange for a block
/// distribution).
fn neighbour_items(rank: usize, nprocs: usize) -> Vec<(usize, (usize, usize))> {
    let left = (rank + nprocs - 1) % nprocs;
    let right = (rank + 1) % nprocs;
    vec![(left, (rank, 0)), (right, (rank, 1))]
}

fn bench_router(c: &mut Criterion) {
    let mut group = c.benchmark_group("router");
    for &nprocs in &[8usize, 32] {
        let machine = Machine::new(nprocs, CostModel::ideal());
        group.bench_with_input(
            BenchmarkId::new("crystal_router", nprocs),
            &nprocs,
            |b, &n| {
                b.iter(|| {
                    machine.run(|proc| {
                        collectives::crystal_router(proc, neighbour_items(proc.rank(), n)).len()
                    })
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("direct_exchange", nprocs),
            &nprocs,
            |b, &n| {
                b.iter(|| {
                    machine.run(|proc| {
                        collectives::direct_exchange(proc, neighbour_items(proc.rank(), n)).len()
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_router);
criterion_main!(benches);
