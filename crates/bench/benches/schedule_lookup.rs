//! Ablation A1: the paper's schedule representation.
//!
//! §3.3 argues for dynamically allocated, sorted arrays of coalesced range
//! records: `O(log r)` access by binary search and compact messages, at the
//! price of `O(r)` insertion.  This bench compares element lookup through
//! the range records against the obvious alternative the paper rejects — a
//! per-element hash map — for schedules of increasing fragmentation.

use std::collections::HashMap;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use distrib::IndexSet;
use kali_core::CommSchedule;

/// Build a schedule whose receive set consists of `ranges` ranges of
/// `range_len` elements each, spread over 7 source processors.
fn build_schedule(ranges: usize, range_len: usize) -> CommSchedule {
    let nprocs = 8usize;
    let mut sets = vec![IndexSet::new(); nprocs];
    for r in 0..ranges {
        let src = 1 + (r % (nprocs - 1));
        let start = r * (range_len + 3); // gaps keep ranges from coalescing
        sets[src].insert_range(distrib::IndexRange::new(start, start + range_len));
    }
    CommSchedule::from_recv_sets(0, &sets, vec![], vec![])
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_lookup");
    for &ranges in &[4usize, 64, 1024] {
        let range_len = 8usize;
        let schedule = build_schedule(ranges, range_len);
        // Probe set: every received element once.
        let probes: Vec<usize> = schedule.recv_index_set().iter().collect();
        // The alternative representation: element -> buffer slot hash map.
        let map: HashMap<usize, usize> = probes
            .iter()
            .map(|&g| (g, schedule.find(g).unwrap()))
            .collect();

        group.bench_with_input(
            BenchmarkId::new("range_records_binary_search", ranges),
            &ranges,
            |b, _| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for &g in &probes {
                        acc += schedule.find(black_box(g)).unwrap();
                    }
                    acc
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("per_element_hash_map", ranges),
            &ranges,
            |b, _| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for &g in &probes {
                        acc += *map.get(&black_box(g)).unwrap();
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
