//! Executor benchmarks: one relaxation sweep under the Kali run-time system
//! vs the hand-coded halo exchange (§1's "virtually identical" claim) and
//! the communication-overlap ablation (the paper's Figure 3 code shape).
//!
//! Host wall-clock is what Criterion reports; the corresponding *simulated*
//! times appear in the table binaries.

use baseline::handcoded_jacobi;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distrib::DimDist;
use dmsim::{CostModel, Machine};
use meshes::{RegularGrid, UnstructuredMeshBuilder};
use solvers::{jacobi_sweeps, JacobiConfig};

fn bench_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor_sweep");
    group.sample_size(10);
    let procs = 8usize;
    let grid = RegularGrid::square(64);
    let grid_mesh = grid.five_point_mesh();
    let grid_initial = grid.initial_field();
    let unstructured = UnstructuredMeshBuilder::new(64, 64).seed(11).build();
    let unstructured_initial: Vec<f64> = (0..unstructured.len()).map(|i| (i % 7) as f64).collect();

    for (name, mesh, initial) in [
        ("regular_grid_64x64", &grid_mesh, &grid_initial),
        ("unstructured_64x64", &unstructured, &unstructured_initial),
    ] {
        let machine = Machine::new(procs, CostModel::ncube7());
        group.bench_with_input(BenchmarkId::new("kali_overlap", name), &(), |b, _| {
            b.iter(|| {
                machine.run(|proc| {
                    let dist = DimDist::block(mesh.len(), proc.nprocs());
                    jacobi_sweeps(proc, mesh, &dist, initial, &JacobiConfig::with_sweeps(5))
                        .total_time
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("kali_no_overlap", name), &(), |b, _| {
            b.iter(|| {
                machine.run(|proc| {
                    let dist = DimDist::block(mesh.len(), proc.nprocs());
                    let config = JacobiConfig {
                        sweeps: 5,
                        overlap: false,
                        ..JacobiConfig::default()
                    };
                    jacobi_sweeps(proc, mesh, &dist, initial, &config).total_time
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("handcoded", name), &(), |b, _| {
            b.iter(|| machine.run(|proc| handcoded_jacobi(proc, mesh, initial, 5).total_time))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
