//! In-tree stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the micro-benchmarks
//! run on this shim: the same `criterion_group!` / `criterion_main!` /
//! `benchmark_group` / `bench_with_input` / `iter` surface, implemented as a
//! plain warm-up + timed-sample loop that prints mean and min wall-clock
//! time per iteration.  There is no statistical analysis, outlier detection
//! or HTML report — the numbers are indicative, which is all the ablation
//! benches need (the *simulated* times in the table binaries are the
//! reproducible quantities).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a displayed parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Times one closure; handed to the user's benchmark body.
pub struct Bencher {
    samples: usize,
    /// Per-sample durations in seconds, filled in by [`Bencher::iter`].
    result: Option<Vec<f64>>,
}

impl Bencher {
    /// Run `f` repeatedly: one warm-up call, then `samples` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let mut durations = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            durations.push(start.elapsed().as_secs_f64());
        }
        self.result = Some(durations);
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            result: None,
        };
        body(&mut bencher, input);
        self.report(&id.to_string(), &bencher);
        self
    }

    /// Run one benchmark without an input value.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            result: None,
        };
        body(&mut bencher);
        self.report(name, &bencher);
        self
    }

    fn report(&mut self, id: &str, bencher: &Bencher) {
        match &bencher.result {
            Some(durations) if !durations.is_empty() => {
                let mean = durations.iter().sum::<f64>() / durations.len() as f64;
                let min = durations.iter().cloned().fold(f64::INFINITY, f64::min);
                println!(
                    "{}/{}: mean {} min {} ({} samples)",
                    self.name,
                    id,
                    format_duration(mean),
                    format_duration(min),
                    durations.len()
                );
            }
            _ => println!(
                "{}/{}: no measurement (iter was never called)",
                self.name, id
            ),
        }
        self.criterion.benchmarks_run += 1;
    }

    /// End the group (kept for API compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Entry point passed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("== benchmark group: {name} ==");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name).bench_function("bench", body);
        self
    }

    /// Number of benchmarks executed so far (used by the harness macros).
    pub fn benchmarks_run(&self) -> usize {
        self.benchmarks_run
    }
}

fn format_duration(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Bundle benchmark functions into a group runner (shim: a plain function).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            eprintln!("(criterion shim: {} benchmarks, wall-clock only)", criterion.benchmarks_run());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_with_input_runs_and_counts() {
        let mut c = Criterion::default();
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3);
            let mut calls = 0usize;
            group.bench_with_input(BenchmarkId::new("f", 1), &2usize, |b, &x| {
                b.iter(|| {
                    calls += 1;
                    x * 2
                })
            });
            group.finish();
            assert_eq!(calls, 4, "1 warm-up + 3 samples");
        }
        assert_eq!(c.benchmarks_run(), 1);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(2.5), "2.500 s");
        assert_eq!(format_duration(2.5e-3), "2.500 ms");
        assert_eq!(format_duration(2.5e-6), "2.500 us");
        assert_eq!(format_duration(2.5e-8), "25.0 ns");
    }
}
