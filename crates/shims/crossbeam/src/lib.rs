//! In-tree stand-in for the `crossbeam` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the handful of external dependencies the code uses are provided as small
//! workspace-local shims with the same names and API subsets.  This one
//! covers `crossbeam::channel` — the only part the simulator and the native
//! backend use — implemented over `std::sync::mpsc`.
//!
//! Semantics match what the engines rely on: unbounded FIFO channels with
//! cloneable senders and blocking receives.  (The real crossbeam channels
//! are faster under contention and support `select!`; neither property is
//! needed here.)

#![forbid(unsafe_code)]

pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver has hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when every sender has hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a value; fails only when the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives; fails only when every sender was
        /// dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive (used by tests).
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.inner.try_recv().map_err(|_| RecvError)
        }
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1u32).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
        }

        #[test]
        fn cloned_senders_feed_one_receiver() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(7u8).unwrap())
                .join()
                .unwrap();
            assert_eq!(rx.recv().unwrap(), 7);
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
