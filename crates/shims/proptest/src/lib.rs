//! In-tree stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so property tests run on
//! this shim instead: a deterministic pseudo-random case generator behind
//! the same `proptest!` / `Strategy` / `prop_assert*` surface the tests
//! already use.  Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with its generated inputs in
//!   the assertion message; there is no minimisation pass.
//! * **Deterministic seeding.** Cases are derived from a fixed seed mixed
//!   with the test-function name, so failures are reproducible and CI is
//!   stable run-to-run.
//! * **API subset.** Only what the repository uses: integer ranges, tuples,
//!   `Just`, `prop_oneof!`, `prop_map`, `collection::vec`, `bool::ANY`, and
//!   `ProptestConfig { cases, .. }`.

#![forbid(unsafe_code)]

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator derived from a textual label (the test name).
    pub fn from_label(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..bound` (`bound > 0`).
    pub fn index(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A recipe for generating test values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_for_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.index(span) as $t
            }
        }
    )*};
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.index(span) as $t)
            }
        }
    )*};
}

impl_strategy_for_uint_range!(usize, u64, u32, u8);
impl_strategy_for_int_range!(i64, i32);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A: 0);
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Box a strategy, erasing its concrete type but keeping its value type.
///
/// Used by `prop_oneof!` instead of an `as` cast: plain generic inference
/// unifies the value types of all alternatives (an unsize cast would not
/// constrain integer literals).
pub fn boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(strategy)
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct OneOf<T> {
    alternatives: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Build from a non-empty list of alternatives.
    pub fn new(alternatives: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs alternatives");
        OneOf { alternatives }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.index(self.alternatives.len() as u64) as usize;
        self.alternatives[k].generate(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s with a length drawn from `len` and elements drawn
    /// from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start < self.len.end {
                self.len.generate(rng)
            } else {
                self.len.start
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding unbiased booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Per-test configuration (`cases` is the only knob the shim honours).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for source compatibility; unused (no shrinking).
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Define property tests: each function runs `config.cases` times with
/// fresh generated arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_label(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Property-test assertion (plain panic; the shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed($strategy)),+])
    };
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = crate::TestRng::from_label("bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::generate(&(-5i64..6), &mut rng);
            assert!((-5..6).contains(&w));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let strat = (1usize..5, 0usize..3).prop_map(|(a, b)| a * 10 + b);
        let mut rng = crate::TestRng::from_label("compose");
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((10..43).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let strat = crate::collection::vec(0usize..10, 2..6);
        let mut rng = crate::TestRng::from_label("veclen");
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_hits_every_alternative() {
        let strat = prop_oneof![Just(1u32), Just(2), Just(3)];
        let mut rng = crate::TestRng::from_label("oneof");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(a in 0usize..50, b in 0usize..50) {
            prop_assert!(a + b < 100);
            prop_assert_eq!(a + b, b + a);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_header_is_accepted(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }
}
