//! Property coverage for the [`Wire`] codec: `from_bytes(to_bytes(x)) == x`
//! for every wired type, and every way an encoding can be *wrong* — cut
//! short, padded with trailing bytes, or carrying a bad discriminant —
//! surfaces a structured [`WireError`], never a panic or a misdecode.
//!
//! The codec is the mp backend's contract with itself: both ends of a
//! socket run this exact code, so round-trip identity here is what makes
//! the multi-process equivalence column possible at all.

use kali_process::trace::{Event, EventKind};
use kali_process::wire::{from_bytes, to_bytes, KNOWN_COLLECTIVE_OPS};
use kali_process::{Counters, Wire, WireError};

/// Round-trip helper: encode, decode, compare.
fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
    let bytes = to_bytes(&value);
    let back: T = from_bytes(&bytes).expect("round trip decodes");
    assert_eq!(back, value);
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    /// Bit patterns for `f64`, including NaNs, infinities and denormals —
    /// the codec promises *bit* identity, not numeric identity.
    fn arb_f64_bits() -> impl Strategy<Value = u64> {
        prop_oneof![
            0u64..u64::MAX,
            Just(f64::NAN.to_bits()),
            Just(f64::INFINITY.to_bits()),
            Just(f64::NEG_INFINITY.to_bits()),
            Just((-0.0f64).to_bits()),
            Just(1u64), // smallest positive denormal
        ]
    }

    /// ASCII strings of assorted lengths (the shim has no char strategy).
    fn arb_string() -> impl Strategy<Value = String> {
        proptest::collection::vec(32u8..127, 0..24)
            .prop_map(|bytes| String::from_utf8(bytes).expect("ascii range"))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn scalars_round_trip(case in (0u64..u64::MAX, -1_000_000i64..1_000_000, 0usize..1_000_000)) {
            let (u, i, s) = case;
            roundtrip(u);
            roundtrip(i);
            roundtrip(s);
            roundtrip(u as u8);
            roundtrip(u as u16);
            roundtrip(u as u32);
            roundtrip(u % 2 == 0);
        }

        #[test]
        fn f64_round_trips_bitwise(bits in arb_f64_bits()) {
            let x = f64::from_bits(bits);
            let back: f64 = from_bytes(&to_bytes(&x)).expect("decodes");
            prop_assert_eq!(back.to_bits(), bits);
        }

        #[test]
        fn vectors_round_trip_including_empty(v in proptest::collection::vec(0u64..1 << 40, 0..16)) {
            roundtrip(v.clone());
            // Doubly nested — the packed-buffer shape (ragged rows).
            let ragged: Vec<Vec<u64>> = v.iter().map(|&n| vec![n; (n % 5) as usize]).collect();
            roundtrip(ragged);
        }

        #[test]
        fn tuples_and_strings_round_trip(case in (0usize..1000, arb_f64_bits(), arb_string())) {
            let (n, bits, s) = case;
            roundtrip((n, s.clone()));
            roundtrip((n, f64::from_bits(bits).to_bits(), s.clone(), true));
            roundtrip((n, (n as u64, s), vec![f64::from_bits(bits).to_bits(); n % 4]));
        }

        /// Cutting an encoding anywhere must yield `Err`, never a panic and
        /// never a value (the codec is self-delimiting: every prefix is
        /// incomplete, not accidentally valid).
        #[test]
        fn truncation_is_always_a_structured_error(case in (proptest::collection::vec(0u64..1 << 40, 1..8), 0usize..1000)) {
            let (v, cut_seed) = case;
            let bytes = to_bytes(&v);
            let cut = cut_seed % bytes.len();
            prop_assert!(from_bytes::<Vec<u64>>(&bytes[..cut]).is_err());
        }

        /// Trailing garbage after a complete value is rejected: a frame
        /// carries exactly one value.
        #[test]
        fn trailing_bytes_are_rejected(case in (0u64..1 << 40, 0u8..255)) {
            let (value, extra) = case;
            let mut bytes = to_bytes(&value);
            bytes.push(extra);
            match from_bytes::<u64>(&bytes) {
                Err(WireError::TrailingBytes { .. }) => {}
                other => prop_assert!(false, "expected TrailingBytes, got {:?}", other),
            }
        }
    }
}

#[test]
fn unit_and_event_types_round_trip() {
    roundtrip(());
    for op in KNOWN_COLLECTIVE_OPS {
        roundtrip(EventKind::Collective { op });
    }
    roundtrip(EventKind::Send { dst: 3, tag: 0xabc });
    roundtrip(EventKind::Recv {
        src: 1,
        tag: 1 << 45,
    });
    roundtrip(EventKind::ChunkClaim {
        sweep: 7,
        phase: 1,
        low: 10,
        high: 20,
    });
    roundtrip(Event {
        rank: 2,
        seq: 99,
        kind: EventKind::Send { dst: 0, tag: 5 },
    });
    roundtrip(Counters {
        msgs_sent: 1,
        bytes_sent: 2,
        nonlocal_refs: 3,
        queue_peak: 4,
        wire_bytes: 5,
        ..Counters::default()
    });
}

#[test]
fn bad_discriminants_are_structured_errors() {
    // bool only admits 0 and 1.
    match from_bytes::<bool>(&[2]) {
        Err(WireError::BadDiscriminant { context, value }) => {
            assert_eq!(context, "bool");
            assert_eq!(value, 2);
        }
        other => panic!("expected BadDiscriminant, got {other:?}"),
    }
    // An EventKind with an unknown variant tag.
    match from_bytes::<EventKind>(&[9]) {
        Err(WireError::BadDiscriminant { .. }) => {}
        other => panic!("expected BadDiscriminant, got {other:?}"),
    }
    // A collective op name outside the registry.
    let mut bytes = vec![2u8];
    "warp-speed-reduce".to_string().encode(&mut bytes);
    match from_bytes::<EventKind>(&bytes) {
        Err(WireError::UnknownCollectiveOp { name }) => assert_eq!(name, "warp-speed-reduce"),
        other => panic!("expected UnknownCollectiveOp, got {other:?}"),
    }
}

#[test]
fn invalid_utf8_in_strings_is_a_structured_error() {
    let mut bytes = Vec::new();
    2u64.encode(&mut bytes); // length prefix: 2 bytes follow
    bytes.extend_from_slice(&[0xff, 0xfe]); // not UTF-8
    match from_bytes::<String>(&bytes) {
        Err(WireError::BadUtf8 { .. }) => {}
        other => panic!("expected BadUtf8, got {other:?}"),
    }
}

#[test]
fn corrupt_vector_length_fails_without_allocating() {
    // A Vec<u64> claiming u64::MAX elements with a one-byte body: the
    // decoder must fail on the first missing element instead of reserving
    // the claimed capacity up front.
    let mut bytes = Vec::new();
    u64::MAX.encode(&mut bytes);
    bytes.push(0);
    assert!(from_bytes::<Vec<u64>>(&bytes).is_err());
}
