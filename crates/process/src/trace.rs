//! Structured execution-trace events for happens-before analysis.
//!
//! When a caller opts in ([`Process::trace_start`]), a backend records one
//! [`Event`] per point-to-point message endpoint, collective entry, and
//! chunked-executor claim, stamped with a per-rank sequence number.  The
//! recorded per-rank event vectors are the input of the trace analyzer
//! (`kali_core::mc`), which reconstructs vector clocks *offline* — nothing
//! is ever piggybacked on messages, so tracing cannot perturb the run it
//! observes beyond the cost of pushing onto a local `Vec`.
//!
//! [`Process::trace_start`]: crate::Process::trace_start

use crate::Tag;

/// What one recorded event was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A point-to-point send completed posting on this rank.
    Send {
        /// Destination rank.
        dst: usize,
        /// Message tag.
        tag: Tag,
    },
    /// A point-to-point receive completed on this rank.
    Recv {
        /// Source rank.
        src: usize,
        /// Message tag.
        tag: Tag,
    },
    /// This rank entered a collective operation.  Collectives are epoch
    /// markers for the analyzer: channel reuse separated by a collective on
    /// *both* endpoints is considered safe even without a point-to-point
    /// happens-before path (SPMD lockstep plus per-channel FIFO).
    Collective {
        /// The collective's name (`"barrier"`, `"allreduce"`, ...).
        op: &'static str,
    },
    /// The chunked executor claimed one chunk of a phase's iteration list.
    /// `low..high` are *positions* within that phase's list, which double
    /// as the chunk's write range into the phase's result sink.
    ChunkClaim {
        /// The sweep (executor tag offset) the claim belongs to.
        sweep: u64,
        /// Phase within the sweep: `0` = local iterations, `1` = nonlocal.
        phase: usize,
        /// First claimed position (inclusive).
        low: usize,
        /// Past-the-end claimed position.
        high: usize,
    },
}

/// One recorded execution event of one rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// The recording rank.
    pub rank: usize,
    /// Position in the rank's program order, starting at 0.  Informational:
    /// the analyzer orders events by their position in the recorded vector,
    /// so hand-built traces need not maintain it.
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
}

/// A per-rank event recorder, owned by a backend process and driven through
/// the [`Process`](crate::Process) trace hooks.  Inactive (and free) until
/// [`TraceRecorder::start`] flips it on.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    active: bool,
    next_seq: u64,
    events: Vec<Event>,
}

impl TraceRecorder {
    /// Discard any previous trace and begin recording.
    pub fn start(&mut self) {
        self.active = true;
        self.next_seq = 0;
        self.events.clear();
    }

    /// Whether events are currently being recorded.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Record one event for `rank` (no-op while inactive).
    pub fn record(&mut self, rank: usize, kind: EventKind) {
        if !self.active {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(Event { rank, seq, kind });
    }

    /// Stop recording and hand back the events captured since
    /// [`TraceRecorder::start`].
    pub fn take(&mut self) -> Vec<Event> {
        self.active = false;
        self.next_seq = 0;
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_is_inert_until_started() {
        let mut r = TraceRecorder::default();
        r.record(0, EventKind::Collective { op: "barrier" });
        assert!(!r.is_active());
        assert_eq!(r.take(), vec![]);
    }

    #[test]
    fn recorder_stamps_sequence_numbers_and_take_resets() {
        let mut r = TraceRecorder::default();
        r.start();
        r.record(2, EventKind::Send { dst: 1, tag: 7 });
        r.record(2, EventKind::Recv { src: 1, tag: 9 });
        let events = r.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[0].rank, 2);
        assert!(matches!(events[1].kind, EventKind::Recv { src: 1, tag: 9 }));
        // take() deactivates and clears.
        assert!(!r.is_active());
        r.record(2, EventKind::Send { dst: 0, tag: 1 });
        assert_eq!(r.take(), vec![]);
        // start() after take() restarts numbering from zero.
        r.start();
        r.record(
            2,
            EventKind::ChunkClaim {
                sweep: 3,
                phase: 1,
                low: 0,
                high: 8,
            },
        );
        assert_eq!(r.take()[0].seq, 0);
    }
}
