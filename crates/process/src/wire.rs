//! The wire codec: canonical byte encodings for message payloads.
//!
//! The in-process backends (`dmsim`, `kali-native`) move payloads as typed
//! values through channels — a `send` hands the receiver the very same
//! bits, so *any* `Send + 'static` type would do.  A multi-process backend
//! cannot: its messages cross an OS process boundary over a socket, so
//! every payload must have a defined **byte encoding**.  The [`Wire`] trait
//! is that contract, and the [`Process`](crate::Process) messaging methods
//! require it — which is exactly what flushes silent shared-memory
//! assumptions (an `Arc` smuggled through a message would compile against a
//! channel backend but has no wire form).
//!
//! ## Format
//!
//! Encodings are canonical, little-endian, and self-delimiting:
//!
//! | type                   | encoding                                        |
//! |------------------------|-------------------------------------------------|
//! | `u8`/`u16`/`u32`/`u64` | fixed-width little-endian                       |
//! | `i64`                  | two's complement little-endian                  |
//! | `usize`                | as `u64` (checked on decode)                    |
//! | `f64`                  | IEEE-754 bits, little-endian (`to_bits`)        |
//! | `bool`                 | one byte, `0` or `1`                            |
//! | `()`                   | zero bytes                                      |
//! | tuples                 | fields in order, no padding                     |
//! | `Vec<T>` / `String`    | `u64` element/byte count, then the elements     |
//!
//! `f64` round-trips **bitwise** (including NaN payloads and signed
//! zeros) — the determinism contract extends across the wire unchanged.
//!
//! Decoding is total: every failure is a structured [`WireError`] naming
//! what was being decoded and what was wrong, never a panic or a hang —
//! the multi-process backend turns these into frame errors naming the
//! offending rank and tag.

use crate::trace::{Event, EventKind};
use crate::Counters;

/// A decode failure: what was being decoded and why it could not be.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were available.
        available: usize,
    },
    /// An enum discriminant or restricted value was out of range.
    BadDiscriminant {
        /// What was being decoded.
        context: &'static str,
        /// The offending value.
        value: u64,
    },
    /// A decoded length or index does not fit the platform's `usize`.
    LengthOverflow {
        /// What was being decoded.
        context: &'static str,
        /// The offending value.
        value: u64,
    },
    /// The buffer held more bytes than the value consumed (only reported
    /// by whole-buffer decodes, [`from_bytes`]).
    TrailingBytes {
        /// Bytes left over after the value was fully decoded.
        remaining: usize,
    },
    /// A string field was not valid UTF-8.
    BadUtf8 {
        /// What was being decoded.
        context: &'static str,
    },
    /// A collective-operation name was not one of the registered names
    /// ([`KNOWN_COLLECTIVE_OPS`]).
    UnknownCollectiveOp {
        /// The unregistered name.
        name: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated {
                context,
                needed,
                available,
            } => write!(
                f,
                "truncated payload while decoding {context}: needed {needed} bytes, {available} available"
            ),
            WireError::BadDiscriminant { context, value } => {
                write!(f, "bad discriminant {value} while decoding {context}")
            }
            WireError::LengthOverflow { context, value } => {
                write!(f, "length {value} overflows usize while decoding {context}")
            }
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing byte(s) after a complete value")
            }
            WireError::BadUtf8 { context } => {
                write!(f, "invalid UTF-8 while decoding {context}")
            }
            WireError::UnknownCollectiveOp { name } => {
                write!(f, "unregistered collective op name {name:?}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A cursor over an encoded buffer, consumed front to back by
/// [`Wire::decode`].
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over the whole of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consume exactly `n` bytes, or report a truncation naming `context`.
    pub fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                context,
                needed: n,
                available: self.remaining(),
            });
        }
        let bytes = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(bytes)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, context)?[0])
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes(
            b.try_into().expect("take(8) returned 8 bytes"),
        ))
    }

    /// Decode a `u64` length prefix and check it fits `usize`.
    fn len(&mut self, context: &'static str) -> Result<usize, WireError> {
        let v = self.u64(context)?;
        usize::try_from(v).map_err(|_| WireError::LengthOverflow { context, value: v })
    }
}

/// A type with a canonical byte encoding, eligible to cross a process
/// boundary as a message payload.
///
/// Every [`Process`](crate::Process) messaging method requires its payload
/// to be `Wire`; the in-process backends never call `encode`/`decode` (they
/// move the typed value), while the multi-process backend encodes on send
/// and decodes on receive.  Implementations must round-trip exactly:
/// `decode(encode(v)) == v`, bit for bit for floating-point payloads.
pub trait Wire: Send + Sized + 'static {
    /// Append this value's canonical encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode one value from the front of `r`, consuming exactly the bytes
    /// `encode` produced.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

/// Encode one value into a fresh buffer.
pub fn to_bytes<T: Wire>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// Decode one value from a buffer, requiring the buffer to be consumed
/// exactly (trailing bytes are an error — a frame carries one value).
pub fn from_bytes<T: Wire>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = WireReader::new(bytes);
    let value = T::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes {
            remaining: r.remaining(),
        });
    }
    Ok(value)
}

macro_rules! impl_wire_int {
    ($($t:ty => $name:literal),*) => {$(
        impl Wire for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                let b = r.take(std::mem::size_of::<$t>(), $name)?;
                Ok(<$t>::from_le_bytes(b.try_into().expect("sized take")))
            }
        }
    )*};
}

impl_wire_int!(u8 => "u8", u16 => "u16", u32 => "u32", u64 => "u64", i64 => "i64");

impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let v = u64::decode(r)?;
        usize::try_from(v).map_err(|_| WireError::LengthOverflow {
            context: "usize",
            value: v,
        })
    }
}

impl Wire for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let b = r.take(8, "f64")?;
        Ok(f64::from_bits(u64::from_le_bytes(
            b.try_into().expect("take(8) returned 8 bytes"),
        )))
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8("bool")? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(WireError::BadDiscriminant {
                context: "bool",
                value: v as u64,
            }),
        }
    }
}

impl Wire for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

macro_rules! impl_wire_tuple {
    ($($name:ident),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn encode(&self, out: &mut Vec<u8>) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.encode(out);)+
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                Ok(($($name::decode(r)?,)+))
            }
        }
    };
}

impl_wire_tuple!(A, B);
impl_wire_tuple!(A, B, C);
impl_wire_tuple!(A, B, C, D);
impl_wire_tuple!(A, B, C, D, E);

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.len("Vec length")?;
        // Cap the up-front reservation: a corrupted length prefix must fail
        // with a truncation error on the first missing element, not abort
        // the process by reserving petabytes.
        let mut v = Vec::with_capacity(n.min(r.remaining().max(1)).min(1 << 16));
        for _ in 0..n {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.len("String length")?;
        let bytes = r.take(n, "String bytes")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8 { context: "String" })
    }
}

/// The collective-operation names a trace may carry across a process
/// boundary.  [`EventKind::Collective`] holds a `&'static str`, so decoding
/// resolves the transmitted name against this table; backends that invent
/// new op names must register them here before shipping traces between
/// processes.
pub const KNOWN_COLLECTIVE_OPS: [&str; 5] = [
    "barrier",
    "exchange",
    "allgather",
    "allgather-doubling",
    "allreduce",
];

impl Wire for EventKind {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            EventKind::Send { dst, tag } => {
                out.push(0);
                dst.encode(out);
                tag.encode(out);
            }
            EventKind::Recv { src, tag } => {
                out.push(1);
                src.encode(out);
                tag.encode(out);
            }
            EventKind::Collective { op } => {
                out.push(2);
                op.to_string().encode(out);
            }
            EventKind::ChunkClaim {
                sweep,
                phase,
                low,
                high,
            } => {
                out.push(3);
                sweep.encode(out);
                phase.encode(out);
                low.encode(out);
                high.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8("EventKind discriminant")? {
            0 => Ok(EventKind::Send {
                dst: usize::decode(r)?,
                tag: u64::decode(r)?,
            }),
            1 => Ok(EventKind::Recv {
                src: usize::decode(r)?,
                tag: u64::decode(r)?,
            }),
            2 => {
                let name = String::decode(r)?;
                KNOWN_COLLECTIVE_OPS
                    .iter()
                    .find(|&&known| known == name)
                    .map(|&known| EventKind::Collective { op: known })
                    .ok_or(WireError::UnknownCollectiveOp { name })
            }
            3 => Ok(EventKind::ChunkClaim {
                sweep: u64::decode(r)?,
                phase: usize::decode(r)?,
                low: usize::decode(r)?,
                high: usize::decode(r)?,
            }),
            v => Err(WireError::BadDiscriminant {
                context: "EventKind discriminant",
                value: v as u64,
            }),
        }
    }
}

impl Wire for Event {
    fn encode(&self, out: &mut Vec<u8>) {
        self.rank.encode(out);
        self.seq.encode(out);
        self.kind.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Event {
            rank: usize::decode(r)?,
            seq: u64::decode(r)?,
            kind: EventKind::decode(r)?,
        })
    }
}

impl Wire for Counters {
    fn encode(&self, out: &mut Vec<u8>) {
        // Exhaustive destructuring: adding a counter field without updating
        // the encoding is a compile error, not silent data loss.
        let Counters {
            msgs_sent,
            msgs_recv,
            bytes_sent,
            bytes_recv,
            flops,
            mem_refs,
            loop_iters,
            calls,
            nonlocal_refs,
            queue_peak,
            wire_bytes,
        } = self;
        for field in [
            msgs_sent,
            msgs_recv,
            bytes_sent,
            bytes_recv,
            flops,
            mem_refs,
            loop_iters,
            calls,
            nonlocal_refs,
            queue_peak,
            wire_bytes,
        ] {
            field.encode(out);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Counters {
            msgs_sent: u64::decode(r)?,
            msgs_recv: u64::decode(r)?,
            bytes_sent: u64::decode(r)?,
            bytes_recv: u64::decode(r)?,
            flops: u64::decode(r)?,
            mem_refs: u64::decode(r)?,
            loop_iters: u64::decode(r)?,
            calls: u64::decode(r)?,
            nonlocal_refs: u64::decode(r)?,
            queue_peak: u64::decode(r)?,
            wire_bytes: u64::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v);
        let back: T = from_bytes(&bytes).expect("roundtrip decode");
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u16::MAX);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(-1i64);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(());
        roundtrip(String::from("kali"));
        roundtrip(String::new());
    }

    #[test]
    fn f64_roundtrips_bitwise_including_nan_payloads() {
        for v in [0.0f64, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY] {
            let back: f64 = from_bytes(&to_bytes(&v)).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        let back: f64 = from_bytes(&to_bytes(&nan)).unwrap();
        assert_eq!(back.to_bits(), nan.to_bits());
    }

    #[test]
    fn composites_roundtrip() {
        roundtrip((1usize, 2.5f64));
        roundtrip((1u64, (2usize, 3usize), vec![4.0f64]));
        roundtrip(vec![vec![1u64, 2], vec![], vec![3]]);
        roundtrip(Vec::<f64>::new());
        roundtrip(vec![(0usize, vec![1.5f64, 2.5])]);
    }

    #[test]
    fn truncated_buffers_fail_with_context() {
        let bytes = to_bytes(&7u64);
        let err = from_bytes::<u64>(&bytes[..5]).unwrap_err();
        assert_eq!(
            err,
            WireError::Truncated {
                context: "u64",
                needed: 8,
                available: 5
            }
        );
        // A corrupted Vec length prefix claims more elements than exist.
        let mut vec_bytes = to_bytes(&vec![1.0f64]);
        vec_bytes[0] = 200;
        let err = from_bytes::<Vec<f64>>(&vec_bytes).unwrap_err();
        assert!(matches!(err, WireError::Truncated { context: "f64", .. }));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = to_bytes(&1u64);
        bytes.push(0);
        assert_eq!(
            from_bytes::<u64>(&bytes).unwrap_err(),
            WireError::TrailingBytes { remaining: 1 }
        );
    }

    #[test]
    fn bad_discriminants_are_rejected() {
        assert_eq!(
            from_bytes::<bool>(&[7]).unwrap_err(),
            WireError::BadDiscriminant {
                context: "bool",
                value: 7
            }
        );
    }

    #[test]
    fn events_and_counters_roundtrip() {
        roundtrip(Event {
            rank: 3,
            seq: 9,
            kind: EventKind::Send {
                dst: 1,
                tag: 1 << 40,
            },
        });
        roundtrip(Event {
            rank: 0,
            seq: 0,
            kind: EventKind::Collective { op: "allreduce" },
        });
        roundtrip(Event {
            rank: 2,
            seq: 4,
            kind: EventKind::ChunkClaim {
                sweep: 5,
                phase: 1,
                low: 0,
                high: 128,
            },
        });
        let c = Counters {
            msgs_sent: 1,
            bytes_recv: 1 << 33,
            wire_bytes: 12345,
            ..Counters::default()
        };
        roundtrip(c);
    }

    #[test]
    fn unknown_collective_op_is_a_structured_error() {
        let mut out = Vec::new();
        out.push(2u8);
        String::from("mystery-op").encode(&mut out);
        let err = from_bytes::<EventKind>(&out).unwrap_err();
        assert_eq!(
            err,
            WireError::UnknownCollectiveOp {
                name: "mystery-op".into()
            }
        );
    }

    #[test]
    fn errors_render_humanly() {
        let s = WireError::Truncated {
            context: "f64",
            needed: 8,
            available: 2,
        }
        .to_string();
        assert!(s.contains("f64") && s.contains("8") && s.contains("2"));
        assert!(WireError::TrailingBytes { remaining: 3 }
            .to_string()
            .contains("3"));
    }
}
