//! Typed reduction operators for first-class `forall` reductions.
//!
//! Kali programs are sequences of `forall`s interleaved with *global
//! reductions* — convergence tests, dot products — yet a reduction performed
//! with an ad-hoc `allreduce_sum_f64` call lives outside the planned
//! pipeline: uncosted, uncounted, and rounded however the backend happens to
//! combine.  This module makes the combining rule itself a typed value:
//!
//! * [`ReduceOp`] — one reduction semantics: an input type (what each loop
//!   iteration contributes), an accumulator type, an identity, a `lift` from
//!   input to accumulator, a `combine`, and a `finish` (e.g. the square root
//!   of a 2-norm).
//! * [`Sum`], [`Min`], [`Max`], [`Norm2`] — the built-in combiners.
//! * [`Reduce`] — the zero-sized token naming an op at a call site:
//!   `execute_reduce(…, Reduce::<Sum<f64>>::new(), …)`.
//!
//! ## Determinism contract
//!
//! Floating-point combining is not associative, so the *order* of a
//! reduction is part of its semantics.  Every reduction built on this module
//! uses one fixed order, everywhere:
//!
//! 1. each rank folds its contributions in **ascending iteration order**
//!    starting from the identity ([`ReduceOp::fold`]);
//! 2. the per-rank partials are combined with the **fixed binomial-tree
//!    bracketing** ([`tree_combine_partials`]): at stride 1 partials of
//!    ranks `2k` and `2k+1` combine (lower rank on the left), at stride 2
//!    the survivors `4k` and `4k+2` combine, and so on — the bracketing is
//!    a function of the rank count alone, never of timing or backend.  The
//!    generic [`Process::allreduce`](crate::Process::allreduce) realises
//!    exactly this bracketing as a binomial-tree reduce to rank 0 followed
//!    by a broadcast (`2(P−1)` messages instead of the flat allgather's
//!    `P·(P−1)`).
//!
//! A sequential replay that folds the same per-rank partial structure with
//! the same helpers reproduces the distributed result **bit for bit**; the
//! solvers' replays (`cg_sequential`, `redblack_sequential`) and the
//! reduction-determinism tests rely on this.  [`combine_partials`] (the
//! flat ascending-rank fold the collective used before the tree) is kept
//! for callers that want a plain left-to-right fold; it is **not** the
//! collective's bracketing.

/// One typed reduction semantics (see the module docs for the determinism
/// contract).
///
/// `combine` must be associative over exact values; it need *not* be exactly
/// associative over floats — the fixed fold order makes the rounding
/// reproducible anyway.
pub trait ReduceOp {
    /// What each loop iteration contributes.
    type Input: Copy + Send + 'static;
    /// The accumulator (and result) type.  `Wire` because the cross-rank
    /// combine ships partials through [`Process::allreduce`], which on a
    /// multi-process backend crosses an actual process boundary.
    ///
    /// [`Process::allreduce`]: crate::Process::allreduce
    type Acc: Copy + PartialEq + std::fmt::Debug + crate::Wire;

    /// The identity every per-rank fold starts from.
    fn identity() -> Self::Acc;

    /// Turn one contribution into an accumulator (e.g. squaring for a
    /// 2-norm).
    fn lift(v: Self::Input) -> Self::Acc;

    /// Combine two accumulators (left argument is the running value).
    fn combine(a: Self::Acc, b: Self::Acc) -> Self::Acc;

    /// Final transformation applied once, after the cross-rank combine
    /// (e.g. the square root of a 2-norm).  Defaults to the identity.
    fn finish(acc: Self::Acc) -> Self::Acc {
        acc
    }

    /// Short name for reports ("sum", "min", …).
    fn name() -> &'static str;

    /// Fold contributions in the order given, starting from the identity —
    /// the per-rank half of the determinism contract.
    fn fold(values: impl IntoIterator<Item = Self::Input>) -> Self::Acc {
        values
            .into_iter()
            .fold(Self::identity(), |acc, v| Self::combine(acc, Self::lift(v)))
    }
}

/// Combine per-rank partials with a flat left-to-right fold in ascending
/// rank order.
///
/// This was the collective's bracketing before the tree allreduce; it is
/// kept as the plain sequential fold.  The cross-rank half of the
/// determinism contract is [`tree_combine_partials`] — use that to replay
/// what [`Process::allreduce`][ar] computes.
///
/// [ar]: crate::Process::allreduce
pub fn combine_partials<R: ReduceOp>(partials: impl IntoIterator<Item = R::Acc>) -> R::Acc {
    partials
        .into_iter()
        .reduce(R::combine)
        .expect("a reduction needs at least one rank's partial")
}

/// Combine per-rank partials with the fixed binomial-tree bracketing — the
/// cross-rank half of the determinism contract, shared by
/// [`Process::allreduce`][ar] and the solvers' sequential replays.
///
/// `partials[r]` must be rank `r`'s partial.  At each doubling stride `s`,
/// the surviving partial of rank `r` (a multiple of `2s`) absorbs the
/// partial of rank `r + s` when that rank exists — lower-rank operand on
/// the left.  The resulting bracketing, e.g. for 7 ranks
/// `((p0+p1)+(p2+p3)) + ((p4+p5)+p6)`, depends only on the rank count, so
/// every backend (and this replay) rounds identically.
///
/// [ar]: crate::Process::allreduce
pub fn tree_combine_partials<R: ReduceOp>(partials: impl IntoIterator<Item = R::Acc>) -> R::Acc {
    let mut v: Vec<R::Acc> = partials.into_iter().collect();
    assert!(
        !v.is_empty(),
        "a reduction needs at least one rank's partial"
    );
    let p = v.len();
    let mut stride = 1;
    while stride < p {
        let mut r = 0;
        while r + stride < p {
            v[r] = R::combine(v[r], v[r + stride]);
            r += 2 * stride;
        }
        stride *= 2;
    }
    v[0]
}

/// The exact combine sequence of [`tree_combine_partials`] at `p` ranks, as
/// `(dst, src)` pairs: replaying `v[dst] = combine(v[dst], v[src])` over a
/// partial vector in this order reproduces the collective's bracketing bit
/// for bit, with the final result in `v[0]`.
///
/// This *is* the determinism contract in data form — static analyses (the
/// `kali-core` verifier's bracketing check) compare the allreduce
/// protocol's message rounds against it, and alternative backends can
/// assert conformance without re-deriving the tree.
pub fn tree_merge_order(p: usize) -> Vec<(usize, usize)> {
    assert!(p > 0, "a reduction needs at least one rank");
    let mut order = Vec::new();
    let mut stride = 1;
    while stride < p {
        let mut r = 0;
        while r + stride < p {
            order.push((r, r + stride));
            r += 2 * stride;
        }
        stride *= 2;
    }
    order
}

/// The call-site token naming a reduction operator:
/// `Reduce::<Sum<f64>>::new()`.
#[derive(Debug, Clone, Copy)]
pub struct Reduce<R: ReduceOp> {
    _op: std::marker::PhantomData<R>,
}

impl<R: ReduceOp> Default for Reduce<R> {
    fn default() -> Self {
        Reduce::new()
    }
}

impl<R: ReduceOp> Reduce<R> {
    /// The token for reduction operator `R`.
    pub fn new() -> Self {
        Reduce {
            _op: std::marker::PhantomData,
        }
    }
}

/// Sum reduction (`+`), the dot-product / convergence-test combiner.
#[derive(Debug, Clone, Copy)]
pub struct Sum<T> {
    _t: std::marker::PhantomData<T>,
}

/// Minimum reduction.
#[derive(Debug, Clone, Copy)]
pub struct Min<T> {
    _t: std::marker::PhantomData<T>,
}

/// Maximum reduction.
#[derive(Debug, Clone, Copy)]
pub struct Max<T> {
    _t: std::marker::PhantomData<T>,
}

/// Euclidean norm: contributions are squared, summed, and square-rooted at
/// the end (`finish`).
#[derive(Debug, Clone, Copy)]
pub struct Norm2;

macro_rules! impl_sum {
    ($($t:ty => $name:literal),*) => {$(
        impl ReduceOp for Sum<$t> {
            type Input = $t;
            type Acc = $t;
            fn identity() -> $t { 0 as $t }
            fn lift(v: $t) -> $t { v }
            fn combine(a: $t, b: $t) -> $t { a + b }
            fn name() -> &'static str { $name }
        }
    )*};
}

impl_sum!(f64 => "sum-f64", u64 => "sum-u64", i64 => "sum-i64", usize => "sum-usize");

impl ReduceOp for Min<f64> {
    type Input = f64;
    type Acc = f64;
    fn identity() -> f64 {
        f64::INFINITY
    }
    fn lift(v: f64) -> f64 {
        v
    }
    fn combine(a: f64, b: f64) -> f64 {
        a.min(b)
    }
    fn name() -> &'static str {
        "min-f64"
    }
}

impl ReduceOp for Min<u64> {
    type Input = u64;
    type Acc = u64;
    fn identity() -> u64 {
        u64::MAX
    }
    fn lift(v: u64) -> u64 {
        v
    }
    fn combine(a: u64, b: u64) -> u64 {
        a.min(b)
    }
    fn name() -> &'static str {
        "min-u64"
    }
}

impl ReduceOp for Max<f64> {
    type Input = f64;
    type Acc = f64;
    fn identity() -> f64 {
        f64::NEG_INFINITY
    }
    fn lift(v: f64) -> f64 {
        v
    }
    fn combine(a: f64, b: f64) -> f64 {
        a.max(b)
    }
    fn name() -> &'static str {
        "max-f64"
    }
}

impl ReduceOp for Max<u64> {
    type Input = u64;
    type Acc = u64;
    fn identity() -> u64 {
        u64::MIN
    }
    fn lift(v: u64) -> u64 {
        v
    }
    fn combine(a: u64, b: u64) -> u64 {
        a.max(b)
    }
    fn name() -> &'static str {
        "max-u64"
    }
}

impl ReduceOp for Norm2 {
    type Input = f64;
    type Acc = f64;
    fn identity() -> f64 {
        0.0
    }
    fn lift(v: f64) -> f64 {
        v * v
    }
    fn combine(a: f64, b: f64) -> f64 {
        a + b
    }
    fn finish(acc: f64) -> f64 {
        acc.sqrt()
    }
    fn name() -> &'static str {
        "norm2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_folds_in_the_given_order() {
        // Non-associative-sensitive values: a different fold order rounds
        // differently, so equality here pins the order down.
        let xs = [1.0e16, 1.0, -1.0e16, 1.0];
        let folded = Sum::<f64>::fold(xs);
        let mut manual = 0.0f64;
        for x in xs {
            manual += x;
        }
        assert_eq!(folded.to_bits(), manual.to_bits());
    }

    #[test]
    fn combine_partials_is_a_rank_ordered_fold() {
        let partials = [0.1f64, 0.2, 0.3, 0.4];
        let combined = combine_partials::<Sum<f64>>(partials);
        assert_eq!(combined.to_bits(), (((0.1f64 + 0.2) + 0.3) + 0.4).to_bits());
    }

    #[test]
    fn tree_combine_partials_uses_the_binomial_bracketing() {
        // Rounding-sensitive partials: the tree bracketing provably rounds
        // differently from the flat fold at 4+ ranks, so equality with the
        // hand-written tree pins the bracketing down.
        let p: Vec<f64> = (0..7).map(|r| 0.1 * (r as f64 + 1.0)).collect();
        let tree = tree_combine_partials::<Sum<f64>>(p.clone());
        let manual = ((p[0] + p[1]) + (p[2] + p[3])) + ((p[4] + p[5]) + p[6]);
        assert_eq!(tree.to_bits(), manual.to_bits());

        let four = tree_combine_partials::<Sum<f64>>(p[..4].to_vec());
        assert_eq!(four.to_bits(), ((p[0] + p[1]) + (p[2] + p[3])).to_bits());
        // ... and the bracketing is observable: with partials whose pairwise
        // sums are exact but whose flat prefix sums are not, the tree and
        // the flat fold round differently.
        let sensitive = [1.0e16, 1.0, 1.0, 1.0];
        let tree4 = tree_combine_partials::<Sum<f64>>(sensitive);
        let flat4 = combine_partials::<Sum<f64>>(sensitive);
        assert_eq!(tree4, 1.0e16 + 2.0);
        assert_ne!(tree4.to_bits(), flat4.to_bits());

        // Degenerate sizes.
        assert_eq!(tree_combine_partials::<Sum<f64>>([1.5]), 1.5);
        assert_eq!(tree_combine_partials::<Sum<f64>>([1.5, 2.5]), 4.0);
    }

    #[test]
    fn tree_and_flat_agree_for_exact_values() {
        for p in 1..=16usize {
            let partials: Vec<u64> = (0..p as u64).map(|r| r * r + 1).collect();
            assert_eq!(
                tree_combine_partials::<Sum<u64>>(partials.clone()),
                combine_partials::<Sum<u64>>(partials),
                "p = {p}"
            );
        }
    }

    #[test]
    fn tree_merge_order_replays_the_tree_bracketing() {
        for p in 1..=33usize {
            let partials: Vec<f64> = (0..p).map(|r| 0.1 * (r as f64 + 1.0)).collect();
            let mut v = partials.clone();
            for (dst, src) in tree_merge_order(p) {
                assert!(dst < src, "lower-rank operand is always on the left");
                v[dst] = Sum::<f64>::combine(v[dst], v[src]);
            }
            assert_eq!(
                v[0].to_bits(),
                tree_combine_partials::<Sum<f64>>(partials).to_bits(),
                "p = {p}"
            );
        }
        assert_eq!(tree_merge_order(1), vec![]);
        assert_eq!(tree_merge_order(4), vec![(0, 1), (2, 3), (0, 2)]);
    }

    #[test]
    fn min_max_identities_are_absorbing() {
        assert_eq!(Min::<f64>::fold([3.0, -1.0, 2.0]), -1.0);
        assert_eq!(Max::<f64>::fold([3.0, -1.0, 2.0]), 3.0);
        assert_eq!(Min::<f64>::fold(std::iter::empty()), f64::INFINITY);
        assert_eq!(Max::<u64>::fold([7, 2, 9]), 9);
        assert_eq!(Min::<u64>::fold([7, 2, 9]), 2);
        assert_eq!(Sum::<u64>::fold([7, 2, 9]), 18);
        assert_eq!(Sum::<usize>::fold([1, 2, 3]), 6);
        assert_eq!(Sum::<i64>::fold([-5, 2]), -3);
    }

    #[test]
    fn norm2_squares_and_roots() {
        let acc = Norm2::fold([3.0, 4.0]);
        assert_eq!(acc, 25.0);
        assert_eq!(Norm2::finish(acc), 5.0);
        assert_eq!(Norm2::name(), "norm2");
    }

    #[test]
    fn reduce_token_is_zero_sized() {
        assert_eq!(std::mem::size_of::<Reduce<Sum<f64>>>(), 0);
        let _ = Reduce::<Norm2>::new();
        let _ = Reduce::<Sum<f64>>::default();
    }
}
