//! # kali-process — the backend abstraction of the Kali runtime
//!
//! The runtime layer of the Kali reproduction (inspector, executor,
//! redistribution, distributed arrays in `kali-core`) needs exactly one
//! thing from the machine it runs on: an SPMD *process* handle that can
//! exchange typed messages with its peers and take part in a few
//! collectives.  This crate defines that contract — the [`Process`] trait —
//! so the runtime can be written once and executed on any backend:
//!
//! * `dmsim::Proc` — the deterministic machine **simulator** with logical
//!   clocks and the paper's NCUBE/7 / iPSC/2 cost models.  It implements the
//!   cost-charging hooks by advancing its simulated clock, which is how the
//!   paper's tables are reproduced.
//! * `kali_native::NativeProc` — a **native** backend running one OS thread
//!   per process with channel-based messaging, for wall-clock execution.
//!   It leaves the cost hooks at their no-op defaults.
//!
//! The trait is deliberately minimal: ranks, typed point-to-point
//! `send`/`recv` matched on `(source, tag)`, the collective shapes the
//! runtime needs (barrier, personalised all-to-all, allgather), and
//! *optional* cost hooks that default to no-ops so native backends pay
//! nothing for the simulator's accounting.  Reductions
//! ([`Process::allreduce`], [`Process::allreduce_sum_f64`]) are *provided*
//! methods built on the point-to-point layer: a binomial-tree reduce to
//! rank 0 plus a binomial broadcast, `2(P−1)` messages total, with a fixed
//! bracketing that is a function of the rank count alone — so one
//! implementation serves every backend and the result is bitwise identical
//! across backends and a sequential replay ([`reduce::tree_combine_partials`]).
//!
//! The [`tags`] module centralises the tag-space layout shared by every
//! runtime component so tag ranges are disjoint by construction.  The
//! [`reduce`] module defines the typed reduction operators ([`ReduceOp`] and
//! the built-in combiners) consumed by the generic [`Process::allreduce`]
//! and by the runtime's `execute_reduce` pipeline.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod reduce;
pub mod tags;
pub mod trace;
pub mod wire;

pub use reduce::{
    combine_partials, tree_combine_partials, tree_merge_order, Max, Min, Norm2, Reduce, ReduceOp,
    Sum,
};
pub use trace::{Event, EventKind, TraceRecorder};
pub use wire::{Wire, WireError, WireReader};

/// Message tag, used to match sends with receives (like MPI tags).
///
/// See [`tags`] for how the 64-bit tag space is partitioned between the
/// runtime components.
pub type Tag = u64;

/// Operation counters accumulated by one process.
///
/// Counters are pure bookkeeping — backends that do not meter operations
/// simply leave them at zero (the trait's default).  The simulator uses them
/// for the paper's message/volume tables; tests use them to assert
/// communication shapes ("one message per neighbour pair").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Number of point-to-point messages sent.
    pub msgs_sent: u64,
    /// Number of point-to-point messages received.
    pub msgs_recv: u64,
    /// Total payload bytes sent (simulated wire size).
    pub bytes_sent: u64,
    /// Total payload bytes received (simulated wire size).
    pub bytes_recv: u64,
    /// Floating-point operations charged.
    pub flops: u64,
    /// Local memory references charged.
    pub mem_refs: u64,
    /// Loop iterations charged.
    pub loop_iters: u64,
    /// Procedure calls charged.
    pub calls: u64,
    /// Nonlocal distributed-array references resolved through a
    /// communication buffer (the executor's binary-search path).  A direct
    /// locality metric: a placement that keeps references local drives this
    /// to zero.
    pub nonlocal_refs: u64,
    /// High-water mark of the backend's pending-message buffer (messages
    /// that arrived before they were asked for).  Unlike every other field
    /// this is a *peak*, so [`Counters::merge`] takes the maximum and
    /// [`Counters::since`] passes it through unchanged.
    pub queue_peak: u64,
    /// Bytes actually written to a transport (encoded payload plus frame
    /// headers).  Zero on in-process backends — dmsim's `bytes_sent` is a
    /// *modeled* wire size, this is a *measured* one — so paper tables can
    /// print modeled and measured traffic side by side.
    pub wire_bytes: u64,
}

impl Counters {
    /// Element-wise sum of two counter sets.
    pub fn merge(&self, other: &Counters) -> Counters {
        Counters {
            msgs_sent: self.msgs_sent + other.msgs_sent,
            msgs_recv: self.msgs_recv + other.msgs_recv,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            bytes_recv: self.bytes_recv + other.bytes_recv,
            flops: self.flops + other.flops,
            mem_refs: self.mem_refs + other.mem_refs,
            loop_iters: self.loop_iters + other.loop_iters,
            calls: self.calls + other.calls,
            nonlocal_refs: self.nonlocal_refs + other.nonlocal_refs,
            queue_peak: self.queue_peak.max(other.queue_peak),
            wire_bytes: self.wire_bytes + other.wire_bytes,
        }
    }

    /// Element-wise difference `self - earlier`, for measuring a timed
    /// region from two snapshots.
    pub fn since(&self, earlier: &Counters) -> Counters {
        Counters {
            msgs_sent: self.msgs_sent - earlier.msgs_sent,
            msgs_recv: self.msgs_recv - earlier.msgs_recv,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            bytes_recv: self.bytes_recv - earlier.bytes_recv,
            flops: self.flops - earlier.flops,
            mem_refs: self.mem_refs - earlier.mem_refs,
            loop_iters: self.loop_iters - earlier.loop_iters,
            calls: self.calls - earlier.calls,
            nonlocal_refs: self.nonlocal_refs - earlier.nonlocal_refs,
            queue_peak: self.queue_peak,
            wire_bytes: self.wire_bytes - earlier.wire_bytes,
        }
    }
}

/// One SPMD process of a distributed-memory run.
///
/// Every method is called collectively or pairwise by the SPMD program; the
/// contract is MPI-flavoured:
///
/// * **Point-to-point.**  `send*` is asynchronous (never blocks on the
///   receiver); `recv*` blocks until a message matching `(src, tag)`
///   arrives.  Messages between the same pair with the same tag are
///   delivered in send order; a process may send to itself.
/// * **Collectives.**  Every process must call the same collective in the
///   same order.  Implementations must be *deterministic*: the returned
///   values depend only on the inputs and ranks, never on thread timing.
/// * **Cost hooks.**  The `charge_*` family lets the runtime meter the
///   abstract operations the paper's cost model prices (flops, memory
///   references, locality checks, binary-search steps, record handling).
///   They default to no-ops, so a wall-clock backend pays nothing; the
///   simulator overrides them to advance its logical clock.
pub trait Process {
    /// This process's rank, in `0..nprocs`.
    fn rank(&self) -> usize;

    /// Number of processes taking part in the run.
    fn nprocs(&self) -> usize;

    // ----------------------------------------------------------------
    // Point-to-point messaging
    // ----------------------------------------------------------------

    /// Send a single value to `dst` with the given tag.
    fn send<T: Wire>(&mut self, dst: usize, tag: Tag, value: T);

    /// Send an owned vector to `dst`; the accounted wire size is
    /// `len · size_of::<T>()`.
    fn send_vec<T: Wire>(&mut self, dst: usize, tag: Tag, values: Vec<T>);

    /// Receive a single value with the given tag from `src`.  Blocks until
    /// a matching message arrives.
    fn recv<T: Wire>(&mut self, src: usize, tag: Tag) -> T;

    /// Receive a vector with the given tag from `src`.
    fn recv_vec<T: Wire>(&mut self, src: usize, tag: Tag) -> Vec<T> {
        self.recv::<Vec<T>>(src, tag)
    }

    // ----------------------------------------------------------------
    // Packed messaging (pooled buffers; defaults fall back to send_vec)
    // ----------------------------------------------------------------

    /// Obtain an empty send buffer with at least `capacity` reserved, to be
    /// filled and handed to [`Process::send_packed`].
    ///
    /// Backends with a buffer pool (the native backend) hand out a recycled
    /// allocation when one of the right element type is available; the
    /// default is a fresh `Vec`, so metering backends see exactly the
    /// behaviour they saw before pooling existed.
    fn acquire_send_buffer<T: Send + 'static>(&mut self, capacity: usize) -> Vec<T> {
        Vec::with_capacity(capacity)
    }

    /// Send one packed contiguous buffer to `dst`.  Semantically identical
    /// to [`Process::send_vec`]; the separate entry point lets pooling
    /// backends reclaim the allocation after delivery.
    fn send_packed<T: Wire>(&mut self, dst: usize, tag: Tag, values: Vec<T>) {
        self.send_vec(dst, tag, values)
    }

    /// Receive a packed buffer from `src` and append its elements to `out`,
    /// returning how many elements arrived.  Pooling backends return the
    /// spent buffer to its sender for reuse; the default simply receives and
    /// copies.
    fn recv_packed_append<T: Copy + Wire>(
        &mut self,
        src: usize,
        tag: Tag,
        out: &mut Vec<T>,
    ) -> usize {
        let values = self.recv_vec::<T>(src, tag);
        out.extend_from_slice(&values);
        values.len()
    }

    // ----------------------------------------------------------------
    // Collectives
    // ----------------------------------------------------------------

    /// Synchronise all processes.
    fn barrier(&mut self);

    /// All-to-all personalised exchange: contribute `(destination, item)`
    /// pairs, receive every item addressed to this rank.
    ///
    /// The order of the returned items is backend-defined; callers that
    /// need a canonical order must sort (the inspector does — its send
    /// records are sorted by `(to_proc, low)` after the exchange).
    fn exchange<T: Wire>(&mut self, items: Vec<(usize, T)>) -> Vec<T>;

    /// Gather one vector from every process onto every process, indexed by
    /// rank.  (`Clone` because the contribution is fanned out to `P − 1`
    /// peers.)
    fn allgather<T: Clone + Wire>(&mut self, items: Vec<T>) -> Vec<Vec<T>>;

    /// Sum an `f64` across all processes; every process receives a result
    /// that is bitwise identical across ranks *and* across backends.
    ///
    /// Provided: routes through the generic [`Process::allreduce`], so both
    /// entry points share one tree implementation and one bracketing — there
    /// is no backend-defined rounding left anywhere in the reduction path.
    fn allreduce_sum_f64(&mut self, value: f64) -> f64 {
        self.allreduce(value, |a, b| a + b)
    }

    /// Generic typed all-reduce with a **fixed, backend-independent**
    /// combining order: a binomial-tree reduce to rank 0 followed by a
    /// binomial-tree broadcast of the combined value, built on the trait's
    /// own point-to-point `send`/`recv` (tags from
    /// [`tags::tree_reduce_tag`] / [`tags::tree_bcast_tag`]).
    ///
    /// The tree's bracketing is a function of the rank count alone — at
    /// stride `s`, the partial of rank `r` (a multiple of `2s`) absorbs the
    /// partial of rank `r + s`, lower-rank operand on the left — so the
    /// result is bitwise identical on every rank *and* across backends: the
    /// property the typed reduction pipeline (`execute_reduce`) builds its
    /// determinism contract on.  A sequential replay with
    /// [`reduce::tree_combine_partials`] reproduces it bit for bit.
    ///
    /// Exactly `2(P−1)` point-to-point messages machine-wide (the flat
    /// allgather-fold this replaced cost `P·(P−1)`); metering backends
    /// charge them like any other communication.  `combine` must not depend
    /// on rank.  See [`tree_allreduce_sends`] for the per-rank share.
    fn allreduce<T, F>(&mut self, value: T, combine: F) -> T
    where
        T: Clone + Wire,
        F: Fn(&T, &T) -> T,
    {
        let p = self.nprocs();
        let me = self.rank();
        // Epoch marker for the trace analyzer, *before* any tree traffic:
        // the tree's fixed per-(phase, round) tags are reused by every
        // invocation, and this marker is what certifies the reuse as safe.
        self.trace_emit(trace::EventKind::Collective { op: "allreduce" });
        if p == 1 {
            return value;
        }

        // Reduce phase: at round k (stride 2^k), every surviving rank whose
        // lowest set bit is the stride sends its partial to `me - stride`
        // and leaves; the receiver absorbs it with the lower-rank partial on
        // the left.  Rank 0 ends up holding the tree-bracketed total.
        let mut acc = value;
        let mut stride = 1usize;
        let mut round = 0u32;
        while stride < p {
            if me & (2 * stride - 1) == stride {
                self.send(me - stride, tags::tree_reduce_tag(round), acc.clone());
                break;
            }
            if me & (2 * stride - 1) == 0 && me + stride < p {
                let other: T = self.recv(me + stride, tags::tree_reduce_tag(round));
                acc = combine(&acc, &other);
            }
            stride <<= 1;
            round += 1;
        }

        // Broadcast phase: the reduce tree run in reverse.  Each nonzero
        // rank receives the total over the edge it reduced along (its round
        // is log2 of its lowest set bit), then forwards to its own subtree,
        // largest stride first.
        let lowbit = if me == 0 {
            p.next_power_of_two()
        } else {
            me & me.wrapping_neg()
        };
        if me != 0 {
            acc = self.recv(me - lowbit, tags::tree_bcast_tag(lowbit.trailing_zeros()));
        }
        let mut s = lowbit >> 1;
        while s >= 1 {
            if me + s < p {
                self.send(
                    me + s,
                    tags::tree_bcast_tag(s.trailing_zeros()),
                    acc.clone(),
                );
            }
            s >>= 1;
        }
        acc
    }

    /// Allgather by recursive doubling: `log2(P)` rounds of pairwise
    /// exchanges in which each rank sends everything it has accumulated so
    /// far to the partner `rank XOR 2^round` — `P·log2(P)` messages instead
    /// of the flat allgather's `P·(P−1)`.  Requires a power-of-two rank
    /// count; any other count falls back to [`Process::allgather`].
    ///
    /// Returns the same rank-indexed contributions as `allgather`, so the
    /// two are interchangeable wherever the caller sorts by rank anyway.
    fn allgather_doubling<T: Clone + Wire>(&mut self, items: Vec<T>) -> Vec<Vec<T>> {
        let p = self.nprocs();
        if p == 1 || !p.is_power_of_two() {
            return self.allgather(items);
        }
        self.trace_emit(trace::EventKind::Collective {
            op: "allgather-doubling",
        });
        let me = self.rank();
        let mut acc: Vec<(usize, Vec<T>)> = vec![(me, items)];
        let mut stride = 1usize;
        let mut round = 0u32;
        while stride < p {
            let partner = me ^ stride;
            let tag = tags::tree_gather_tag(round);
            self.send_vec(partner, tag, acc.clone());
            let theirs: Vec<(usize, Vec<T>)> = self.recv_vec(partner, tag);
            acc.extend(theirs);
            stride <<= 1;
            round += 1;
        }
        debug_assert_eq!(acc.len(), p, "doubling must accumulate every rank");
        acc.sort_by_key(|(rank, _)| *rank);
        acc.into_iter()
            .map(|(_, contribution)| contribution)
            .collect()
    }

    // ----------------------------------------------------------------
    // Cost-charging hooks (no-ops unless the backend meters them)
    // ----------------------------------------------------------------

    /// Charge `n` floating-point operations.
    fn charge_flops(&mut self, _n: usize) {}

    /// Charge `n` local memory references.
    fn charge_mem_refs(&mut self, _n: usize) {}

    /// Charge `n` loop iterations of control overhead.
    fn charge_loop_iters(&mut self, _n: usize) {}

    /// Charge `n` procedure calls.
    fn charge_calls(&mut self, _n: usize) {}

    /// Charge one local distributed-array access (index translation + load).
    fn charge_local_access(&mut self) {}

    /// Charge one nonlocal access resolved by binary search over `ranges`
    /// range records (the paper's "search overhead").
    fn charge_nonlocal_access(&mut self, _ranges: usize) {}

    /// Charge `n` local accesses at once.  The default repeats
    /// [`Process::charge_local_access`] `n` times so a metering backend's
    /// clock advances through the identical sequence of additions it would
    /// see from `n` singular calls — bulk charging is a call-count
    /// optimisation, never an accounting change.
    fn charge_local_accesses(&mut self, n: usize) {
        for _ in 0..n {
            self.charge_local_access();
        }
    }

    /// Charge `n` nonlocal accesses, each resolved by binary search over
    /// `ranges` records.  Same contract as
    /// [`Process::charge_local_accesses`]: the default repeats the singular
    /// hook so simulated clocks round identically.
    fn charge_nonlocal_accesses(&mut self, ranges: usize, n: usize) {
        for _ in 0..n {
            self.charge_nonlocal_access(ranges);
        }
    }

    /// Charge one inspector locality check (owner computation for one
    /// reference).
    fn charge_locality_check(&mut self) {}

    /// Charge the handling of `n` schedule records (sort/merge/route work).
    fn charge_record_handling(&mut self, _n: usize) {}

    // ----------------------------------------------------------------
    // Introspection
    // ----------------------------------------------------------------

    /// Elapsed process-local time in seconds: *simulated* seconds on a
    /// metering backend, `0.0` on backends that do not keep a clock.
    fn time(&self) -> f64 {
        0.0
    }

    /// Operation counters accumulated so far (all-zero on backends that do
    /// not meter).
    fn counters(&self) -> Counters {
        Counters::default()
    }

    // ----------------------------------------------------------------
    // Execution tracing (no-ops unless the backend records traces)
    // ----------------------------------------------------------------

    /// Begin recording execution events ([`trace::Event`]) on this rank,
    /// discarding any previous trace.  Backends without a recorder ignore
    /// the call and [`Process::trace_take`] returns an empty trace.
    fn trace_start(&mut self) {}

    /// Stop recording and return the events captured since
    /// [`Process::trace_start`] (empty when tracing was never started or the
    /// backend does not record).
    fn trace_take(&mut self) -> Vec<trace::Event> {
        Vec::new()
    }

    /// Whether a trace is currently being recorded.  Lets callers skip the
    /// work of *constructing* an event when nobody is listening.
    fn trace_active(&self) -> bool {
        false
    }

    /// Record one execution event (no-op while inactive or on backends
    /// without a recorder).  The runtime calls this for chunk claims and
    /// collective entries; backends call it internally for message
    /// endpoints.
    fn trace_emit(&mut self, _kind: trace::EventKind) {}
}

/// Number of children rank `rank` has in the binomial tree over `nprocs`
/// ranks — equivalently, how many partials it absorbs during the reduce
/// phase of [`Process::allreduce`] (its `combine` invocations), and how
/// many copies of the result it forwards during the broadcast phase.
pub fn tree_children(nprocs: usize, rank: usize) -> usize {
    debug_assert!(rank < nprocs, "rank {rank} out of range for {nprocs} procs");
    let bound = if rank == 0 {
        nprocs.next_power_of_two()
    } else {
        rank & rank.wrapping_neg()
    };
    let mut count = 0;
    let mut s = 1usize;
    while s < bound {
        if rank + s < nprocs {
            count += 1;
        }
        s <<= 1;
    }
    count
}

/// Number of point-to-point messages rank `rank` sends during one
/// [`Process::allreduce`]: one partial up to its parent (every rank except
/// 0) plus one result copy per child.  Summed over ranks this is exactly
/// `2(P−1)` — the number the session's reduction metering and the
/// `CommReport` tables account with.
pub fn tree_allreduce_sends(nprocs: usize, rank: usize) -> usize {
    let up = usize::from(rank != 0);
    up + tree_children(nprocs, rank)
}

/// Machine-wide message count of one tree allreduce: `2(P−1)`.
pub fn tree_allreduce_messages(nprocs: usize) -> usize {
    2 * (nprocs - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge_and_since_are_inverse() {
        let a = Counters {
            msgs_sent: 3,
            bytes_sent: 100,
            flops: 7,
            ..Counters::default()
        };
        let b = Counters {
            msgs_sent: 2,
            bytes_sent: 50,
            mem_refs: 9,
            ..Counters::default()
        };
        let sum = a.merge(&b);
        assert_eq!(sum.since(&b), a);
        assert_eq!(sum.since(&a), b);
    }

    /// A minimal single-rank Process exercising the trait defaults.
    struct Solo;

    impl Process for Solo {
        fn rank(&self) -> usize {
            0
        }
        fn nprocs(&self) -> usize {
            1
        }
        fn send<T: Wire>(&mut self, _dst: usize, _tag: Tag, _value: T) {
            panic!("solo process has no peers");
        }
        fn send_vec<T: Wire>(&mut self, _dst: usize, _tag: Tag, _values: Vec<T>) {
            panic!("solo process has no peers");
        }
        fn recv<T: Wire>(&mut self, _src: usize, _tag: Tag) -> T {
            panic!("solo process has no peers");
        }
        fn barrier(&mut self) {}
        fn exchange<T: Wire>(&mut self, items: Vec<(usize, T)>) -> Vec<T> {
            items.into_iter().map(|(_, item)| item).collect()
        }
        fn allgather<T: Clone + Wire>(&mut self, items: Vec<T>) -> Vec<Vec<T>> {
            vec![items]
        }
    }

    #[test]
    fn default_hooks_are_noops_and_introspection_is_zero() {
        let mut p = Solo;
        p.charge_flops(100);
        p.charge_nonlocal_access(64);
        p.charge_locality_check();
        assert_eq!(p.time(), 0.0);
        assert_eq!(p.counters(), Counters::default());
        assert_eq!(p.allreduce_sum_f64(2.5), 2.5);
        assert_eq!(p.exchange(vec![(0, 1u8), (0, 2)]), vec![1, 2]);
    }

    #[test]
    fn generic_allreduce_on_one_rank_returns_the_value() {
        let mut p = Solo;
        let v = p.allreduce(1.25f64, |a, b| a + b);
        assert_eq!(v, 1.25);
        let m = p.allreduce(7u64, |a, b| *a.max(b));
        assert_eq!(m, 7);
        // One rank has no peers: the provided methods must not send.
        assert_eq!(p.allreduce_sum_f64(2.25), 2.25);
        assert_eq!(p.allgather_doubling(vec![9u8]), vec![vec![9u8]]);
    }

    #[test]
    fn tree_message_counts_sum_to_two_p_minus_one() {
        for p in 1..=33usize {
            let total: usize = (0..p).map(|r| tree_allreduce_sends(p, r)).sum();
            assert_eq!(total, tree_allreduce_messages(p), "p = {p}");
            // Reduce phase: every nonzero rank sends exactly one partial up,
            // absorbed by its parent — children counts must mirror that.
            let absorbed: usize = (0..p).map(|r| tree_children(p, r)).sum();
            assert_eq!(absorbed, p - 1, "p = {p}");
        }
        // Spot-check the per-rank shape the session metering relies on.
        assert_eq!(
            (0..4)
                .map(|r| tree_allreduce_sends(4, r))
                .collect::<Vec<_>>(),
            vec![2, 1, 2, 1]
        );
        assert_eq!(
            (0..7)
                .map(|r| tree_allreduce_sends(7, r))
                .collect::<Vec<_>>(),
            vec![3, 1, 2, 1, 3, 1, 1]
        );
    }

    #[test]
    fn default_acquire_send_buffer_is_a_fresh_reserved_vec() {
        let mut p = Solo;
        let buf: Vec<f64> = p.acquire_send_buffer(64);
        assert!(buf.is_empty());
        assert!(buf.capacity() >= 64);
    }

    /// A loopback process that queues self-sends, to exercise the packed
    /// defaults (`send_packed` → `send_vec`, `recv_packed_append` →
    /// `recv_vec` + copy) end to end.
    struct Loopback {
        queued: Vec<(Tag, Box<dyn std::any::Any>)>,
    }

    impl Process for Loopback {
        fn rank(&self) -> usize {
            0
        }
        fn nprocs(&self) -> usize {
            1
        }
        fn send<T: Wire>(&mut self, dst: usize, tag: Tag, value: T) {
            assert_eq!(dst, 0);
            self.queued.push((tag, Box::new(value)));
        }
        fn send_vec<T: Wire>(&mut self, dst: usize, tag: Tag, values: Vec<T>) {
            self.send(dst, tag, values);
        }
        fn recv<T: Wire>(&mut self, src: usize, tag: Tag) -> T {
            assert_eq!(src, 0);
            let pos = self
                .queued
                .iter()
                .position(|(t, _)| *t == tag)
                .expect("no matching message");
            *self.queued.remove(pos).1.downcast::<T>().unwrap()
        }
        fn barrier(&mut self) {}
        fn exchange<T: Wire>(&mut self, items: Vec<(usize, T)>) -> Vec<T> {
            items.into_iter().map(|(_, item)| item).collect()
        }
        fn allgather<T: Clone + Wire>(&mut self, items: Vec<T>) -> Vec<Vec<T>> {
            vec![items]
        }
    }

    #[test]
    fn packed_defaults_round_trip_through_send_vec() {
        let mut p = Loopback { queued: Vec::new() };
        let mut buf = p.acquire_send_buffer::<u32>(3);
        buf.extend_from_slice(&[5, 6, 7]);
        p.send_packed(0, 42, buf);
        let mut out = vec![1u32];
        let n = p.recv_packed_append(0, 42, &mut out);
        assert_eq!(n, 3);
        assert_eq!(out, vec![1, 5, 6, 7]);
    }

    #[test]
    fn bulk_charge_defaults_delegate_to_singular_hooks() {
        /// Counts singular-hook invocations to prove the bulk defaults
        /// repeat them exactly `n` times.
        struct Metered {
            local: usize,
            nonlocal: Vec<usize>,
        }
        impl Process for Metered {
            fn rank(&self) -> usize {
                0
            }
            fn nprocs(&self) -> usize {
                1
            }
            fn send<T: Wire>(&mut self, _d: usize, _t: Tag, _v: T) {}
            fn send_vec<T: Wire>(&mut self, _d: usize, _t: Tag, _v: Vec<T>) {}
            fn recv<T: Wire>(&mut self, _s: usize, _t: Tag) -> T {
                unreachable!()
            }
            fn barrier(&mut self) {}
            fn exchange<T: Wire>(&mut self, items: Vec<(usize, T)>) -> Vec<T> {
                items.into_iter().map(|(_, item)| item).collect()
            }
            fn allgather<T: Clone + Wire>(&mut self, items: Vec<T>) -> Vec<Vec<T>> {
                vec![items]
            }
            fn charge_local_access(&mut self) {
                self.local += 1;
            }
            fn charge_nonlocal_access(&mut self, ranges: usize) {
                self.nonlocal.push(ranges);
            }
        }

        let mut p = Metered {
            local: 0,
            nonlocal: Vec::new(),
        };
        p.charge_local_accesses(5);
        p.charge_nonlocal_accesses(9, 3);
        assert_eq!(p.local, 5);
        assert_eq!(p.nonlocal, vec![9, 9, 9]);
    }
}
