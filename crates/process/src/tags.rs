//! Centralised tag-space layout.
//!
//! Every runtime component that exchanges point-to-point messages derives
//! its tags from this module, so the ranges are disjoint *by construction*
//! and documented in one place.  The 64-bit [`Tag`] space is
//! partitioned as:
//!
//! | range (half-open)        | owner                                          |
//! |--------------------------|------------------------------------------------|
//! | `[0, 2^40)`              | user programs (free-form tags)                 |
//! | `[2^40, 2^41)`           | executor data messages, offset by sweep number |
//! | `[2^41, 2^42)`           | hand-coded baseline halo exchange              |
//! | `[2^42, 2^43)`           | array redistribution traffic                   |
//! | `[2^43, 2^44)`           | distributed owner-map lookup traffic           |
//! | `[2^44, 2^45)`           | tree collectives (phase + round encoded)       |
//! | `[2^45, 2^46)`           | transport control (handshake/result/shutdown)  |
//! | `[2^46, 2^63)`           | reserved (unused)                              |
//! | `[2^63, 2^64)`           | collectives (per-invocation sequence numbers)  |
//!
//! Collective tags additionally embed a per-stage offset in bits 32..40
//! (dissemination-barrier round, reduction dimension), which stays inside
//! the collective range because bit 63 is always set.
//!
//! The previous layout let callers pick magic constants per file
//! (`1 << 40`, `1 << 41`, `1 << 42`, `1 << 63`) with nothing checking
//! disjointness; a sweep counter larger than 2^41 − 2^40 would have walked
//! the executor range into the baseline's.  [`executor_tag`] and
//! [`redistribute_tag`] now bounds-check their offsets in debug builds.

use crate::Tag;

/// Exclusive upper bound of the tag range user programs may use freely.
pub const USER_LIMIT: Tag = 1 << 40;

/// Base of the executor data-message range (`[EXECUTOR_BASE,
/// EXECUTOR_BASE + SPAN)`).
pub const EXECUTOR_BASE: Tag = 1 << 40;

/// Base of the hand-coded baseline halo-exchange range.
pub const HALO_BASE: Tag = 1 << 41;

/// Base of the redistribution-traffic range.
pub const REDIST_BASE: Tag = 1 << 42;

/// Base of the distributed owner-map lookup range (collective resolution of
/// irregular-distribution translation tables).
pub const OWNERMAP_BASE: Tag = 1 << 43;

/// Base of the tree-collective range used by the [`Process`] trait's
/// provided binomial-tree `allreduce` and recursive-doubling allgather
/// (phase in bits 40..42, round in the low bits).
///
/// Tree collectives use *fixed* per-(phase, round) tags instead of
/// per-invocation sequence numbers: every rank calls collectives in the
/// same order (the SPMD contract) and same-`(src, tag)` delivery is FIFO,
/// so messages of consecutive collectives cannot be confused.
///
/// [`Process`]: crate::Process
pub const TREE_BASE: Tag = 1 << 44;

/// Base of the transport-control range: frames a *transport* (not the SPMD
/// program) exchanges to run itself — the multi-process backend's worker
/// handshake, result delivery, worker-panic reports and shutdown frames.
/// Keeping these in a reserved window of the one shared tag space means a
/// control frame can never be mistaken for program traffic, and the
/// disjointness proof below covers the transport like any other component.
pub const TRANSPORT_BASE: Tag = 1 << 45;

/// Base of the collective-operation range (top half of the tag space).
pub const COLLECTIVE_BASE: Tag = 1 << 63;

/// Width of each non-collective component range.
pub const SPAN: Tag = 1 << 40;

/// Every component window of the tag space as `(name, start, end)`
/// half-open ranges — the single source of truth the compile-time
/// disjointness proof below, the runtime documentation test, and
/// `kali_core::verify::check_tag_windows` all read.
pub const COMPONENT_WINDOWS: [(&str, Tag, Tag); 8] = [
    ("user", 0, USER_LIMIT),
    ("executor", EXECUTOR_BASE, EXECUTOR_BASE + SPAN),
    ("halo", HALO_BASE, HALO_BASE + SPAN),
    ("redistribute", REDIST_BASE, REDIST_BASE + SPAN),
    ("ownermap", OWNERMAP_BASE, OWNERMAP_BASE + SPAN),
    ("tree", TREE_BASE, TREE_BASE + (1 << 44)),
    ("transport", TRANSPORT_BASE, TRANSPORT_BASE + SPAN),
    ("collective", COLLECTIVE_BASE, Tag::MAX),
];

const fn windows_pairwise_disjoint(windows: &[(&str, Tag, Tag)]) -> bool {
    let mut i = 0;
    while i < windows.len() {
        let mut j = i + 1;
        while j < windows.len() {
            let (_, a_lo, a_hi) = windows[i];
            let (_, b_lo, b_hi) = windows[j];
            if !(a_hi <= b_lo || b_hi <= a_lo) {
                return false;
            }
            j += 1;
        }
        i += 1;
    }
    true
}

// Overlapping component windows fail the *build*, not a test run: moving a
// base or widening SPAN so two ranges collide is a compile error.
const _: () = assert!(
    windows_pairwise_disjoint(&COMPONENT_WINDOWS),
    "tag component windows must be pairwise disjoint"
);

/// Tag of the executor's data messages for one execution (sweep) of a
/// `forall`.
///
/// Successive executions must use distinct offsets so a fast neighbour's
/// sweep `s + 1` sends cannot be confused with its sweep `s` sends.
pub fn executor_tag(offset: Tag) -> Tag {
    debug_assert!(
        offset < SPAN,
        "executor tag offset {offset} exceeds the range span"
    );
    EXECUTOR_BASE + offset
}

/// Tag of one redistribution's traffic.  `offset` distinguishes concurrent
/// or back-to-back redistributions (0 when there is only one).
pub fn redistribute_tag(offset: Tag) -> Tag {
    debug_assert!(
        offset < SPAN,
        "redistribute tag offset {offset} exceeds the range span"
    );
    REDIST_BASE + offset
}

/// Tag of one distributed owner-map lookup round.  `offset` distinguishes
/// the phases of a multi-round lookup (query routing vs answer routing).
pub fn ownermap_tag(offset: Tag) -> Tag {
    debug_assert!(
        offset < SPAN,
        "ownermap tag offset {offset} exceeds the range span"
    );
    OWNERMAP_BASE + offset
}

/// Tag of the hand-coded baseline's halo messages for one sweep.
pub fn halo_tag(offset: Tag) -> Tag {
    debug_assert!(
        offset < SPAN,
        "halo tag offset {offset} exceeds the range span"
    );
    HALO_BASE + offset
}

/// Tag of a transport handshake frame: the first frame on every
/// transport-level connection, carrying the connecting rank so the acceptor
/// can index the peer.
pub const TRANSPORT_HELLO: Tag = TRANSPORT_BASE;

/// Tag of a transport result frame: a worker's encoded SPMD return value,
/// delivered to the coordinator when the worker's program completes.
pub const TRANSPORT_RESULT: Tag = TRANSPORT_BASE + 1;

/// Tag of a transport error frame: a worker's panic report (rendered
/// message), delivered to the coordinator instead of a result.
pub const TRANSPORT_ERROR: Tag = TRANSPORT_BASE + 2;

/// Tag of a transport shutdown frame: an orderly-teardown marker on a
/// peer-to-peer connection.
pub const TRANSPORT_SHUTDOWN: Tag = TRANSPORT_BASE + 3;

// The named control tags must stay inside the transport window declared in
// `COMPONENT_WINDOWS` — widening the set past the span fails the build.
const _: () = assert!(
    TRANSPORT_SHUTDOWN < TRANSPORT_BASE + SPAN,
    "transport control tags must stay inside the transport window"
);
// And the window itself sits strictly between the tree collectives and the
// top-half collective range, with the control tags in ascending order.
const _: () = assert!(
    TREE_BASE + (1 << 44) <= TRANSPORT_HELLO
        && TRANSPORT_HELLO < TRANSPORT_RESULT
        && TRANSPORT_RESULT < TRANSPORT_ERROR
        && TRANSPORT_ERROR < TRANSPORT_SHUTDOWN
        && TRANSPORT_BASE + SPAN <= COLLECTIVE_BASE,
    "transport window must sit between the tree and collective ranges"
);

/// Phase discriminants of the tree collectives (bits 40..42 of the tag).
const TREE_REDUCE_PHASE: Tag = 0;
const TREE_BCAST_PHASE: Tag = 1;
const TREE_GATHER_PHASE: Tag = 2;

// The phase field is statically bounded: even the largest phase, shifted
// into bits 40..42 and combined with a maximal round offset, stays inside
// the tree window declared in `COMPONENT_WINDOWS`.
const _: () = assert!(
    TREE_BASE + (TREE_GATHER_PHASE << 40) + (SPAN - 1) < TREE_BASE + (1 << 44),
    "tree phase field must stay inside the tree-collective window"
);

fn tree_tag(phase: Tag, round: u32) -> Tag {
    debug_assert!(
        (round as Tag) < SPAN,
        "tree round {round} exceeds the range span"
    );
    TREE_BASE + (phase << 40) + round as Tag
}

/// Tag of round `round` of the binomial-tree reduce phase (partials moving
/// towards rank 0).
pub fn tree_reduce_tag(round: u32) -> Tag {
    tree_tag(TREE_REDUCE_PHASE, round)
}

/// Tag of round `round` of the binomial-tree broadcast phase (the combined
/// result moving back down the tree).  The round of a broadcast message is
/// `log2(stride)` of the hop, so sender and receiver derive it
/// independently.
pub fn tree_bcast_tag(round: u32) -> Tag {
    tree_tag(TREE_BCAST_PHASE, round)
}

/// Tag of round `round` of the recursive-doubling allgather.
pub fn tree_gather_tag(round: u32) -> Tag {
    tree_tag(TREE_GATHER_PHASE, round)
}

/// Tag of the `seq`-th collective operation of a run.
///
/// SPMD programs call collectives in the same order on every rank, so a
/// per-process monotonic sequence number yields matching tags machine-wide.
/// Bits 32..40 are left for the collective's internal stage offset.
pub fn collective_tag(seq: u64) -> Tag {
    debug_assert!(
        seq < 1 << 32,
        "collective sequence number {seq} overflows its field"
    );
    COLLECTIVE_BASE | seq
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Documentation of the invariant the `const` assertion above enforces
    /// at compile time: an overlap would fail the build before this test
    /// could even run.
    #[test]
    fn component_ranges_are_pairwise_disjoint() {
        for (i, a) in COMPONENT_WINDOWS.iter().enumerate() {
            for b in COMPONENT_WINDOWS.iter().skip(i + 1) {
                assert!(a.2 <= b.1 || b.2 <= a.1, "ranges {a:?} and {b:?} overlap");
            }
        }
        assert!(windows_pairwise_disjoint(&COMPONENT_WINDOWS));
    }

    #[test]
    fn constructors_land_in_their_ranges() {
        assert_eq!(executor_tag(0), EXECUTOR_BASE);
        assert!(executor_tag(SPAN - 1) < HALO_BASE);
        assert_eq!(halo_tag(3), HALO_BASE + 3);
        assert!(halo_tag(SPAN - 1) < REDIST_BASE);
        assert_eq!(redistribute_tag(0), REDIST_BASE);
        assert!(redistribute_tag(SPAN - 1) < OWNERMAP_BASE);
        assert_eq!(ownermap_tag(0), OWNERMAP_BASE);
        assert!(ownermap_tag(SPAN - 1) < TREE_BASE);
        // Transport control tags live in their reserved window, above the
        // tree collectives and below the top-half collective range — the
        // `const` assertions beside their definitions enforce this at
        // compile time; here we only pin the concrete values.
        assert_eq!(TRANSPORT_HELLO, 1 << 45);
        assert_eq!(TRANSPORT_SHUTDOWN, (1 << 45) + 3);
        assert_eq!(tree_reduce_tag(0), TREE_BASE);
        assert!(tree_reduce_tag(63) < tree_bcast_tag(0));
        assert!(tree_bcast_tag(63) < tree_gather_tag(0));
        assert!(tree_gather_tag(63) < TREE_BASE + (1 << 44));
        // Distinct (phase, round) pairs always map to distinct tags.
        let tree: Vec<Tag> = (0..3u64)
            .flat_map(|ph| (0..64).map(move |r| tree_tag(ph, r)))
            .collect();
        let mut dedup = tree.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), tree.len());
        assert!(collective_tag(0) >= COLLECTIVE_BASE);
        // Stage offsets (bits 32..40) stay inside the collective range.
        assert!(collective_tag(u32::MAX as u64) + (0xFFu64 << 32) >= COLLECTIVE_BASE);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "exceeds the range span")]
    fn oversized_executor_offset_is_rejected() {
        let _ = executor_tag(SPAN);
    }
}
