//! # kali-mp — the multi-process socket backend of the Kali runtime
//!
//! The third executable backend of the reproduction, and the first whose
//! messages leave the process: every rank is a real OS process (or, in
//! embedder mode, a thread) and every message crosses a Unix-domain socket
//! as a length-prefixed frame carrying a [`Wire`](kali_process::Wire)
//! encoding.  Where dmsim *models* the paper's distributed-memory machine
//! and the native backend runs threads over in-process channels, this
//! backend is the "system" half of ROADMAP's simulator-vs-system gate:
//! nothing can be smuggled between ranks through shared memory, because
//! there is none.
//!
//! * [`frame`] — the wire format: `[len | seq | tag | type-hash]` headers,
//!   total reads, structured [`frame::FrameError`]s.
//! * [`MpProc`] — the [`Process`](kali_process::Process) implementation:
//!   tag-addressed delivery with per-channel FIFO, writer threads so sends
//!   never block, the same rank-ordered collectives and binomial-tree
//!   allreduce bracketing as every other backend, a trace recorder, and
//!   measured `wire_bytes` metering.
//! * [`MpMachine`] — run construction: [`MpMachine::run`] re-executes the
//!   current test binary to get one worker process per rank (the workspace
//!   forbids `unsafe`, hence no `fork`), [`MpMachine::run_threads`] drives
//!   the identical socket transport with threads as rank containers for
//!   embedders whose results are not `Wire`.
//!
//! The backend joins the equivalence suite as the fourth column: results
//! are bitwise identical to dmsim, native and the sequential replay for
//! every solver and distribution in the repository's tests.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod frame;
mod machine;
mod proc;

pub use machine::MpMachine;
pub use proc::MpProc;

#[cfg(test)]
mod tests {
    use super::*;
    use kali_process::Process;
    use std::os::unix::net::UnixStream;

    /// A connected two-rank pair over socketpairs, no filesystem involved.
    fn pair() -> (MpProc, MpProc) {
        let (a, b) = UnixStream::pair().expect("socketpair");
        (
            MpProc::from_peer_streams(0, 2, vec![None, Some(a)]),
            MpProc::from_peer_streams(1, 2, vec![Some(b), None]),
        )
    }

    #[test]
    fn send_recv_round_trips_across_a_socketpair() {
        let (mut p0, mut p1) = pair();
        p0.send(1, 7, 0.1f64);
        p0.send_vec(1, 8, vec![1u64, 2, 3]);
        let x: f64 = p1.recv(0, 7);
        let v: Vec<u64> = p1.recv_vec(0, 8);
        assert_eq!(x.to_bits(), 0.1f64.to_bits());
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn out_of_order_tags_park_and_stay_fifo() {
        let (mut p0, mut p1) = pair();
        for v in [1u64, 2, 3] {
            p0.send(1, 5, v);
        }
        p0.send(1, 6, 99u64);
        let _: u64 = p1.recv(0, 6); // parks the three tag-5 frames
        let got: Vec<u64> = (0..3).map(|_| p1.recv::<u64>(0, 5)).collect();
        assert_eq!(got, vec![1, 2, 3]);
        assert!(p1.counters().queue_peak >= 3);
    }

    #[test]
    fn self_send_round_trips_through_the_codec() {
        let mut p = MpProc::from_peer_streams(0, 1, vec![None]);
        p.send(0, 9, (3usize, 0.5f64));
        let (a, b): (usize, f64) = p.recv(0, 9);
        assert_eq!((a, b), (3, 0.5));
        // Self-sends never touch a transport.
        assert_eq!(p.counters().wire_bytes, 0);
    }

    #[test]
    fn wire_bytes_meter_frame_headers_and_payload() {
        let (mut p0, mut p1) = pair();
        p0.send(1, 1, 5u64); // 24-byte header + 8-byte payload
        let _: u64 = p1.recv(0, 1);
        assert_eq!(p0.counters().wire_bytes, (frame::HEADER_LEN + 8) as u64);
        assert_eq!(p1.counters().wire_bytes, 0, "receives are not sends");
    }

    #[test]
    fn type_mismatch_is_a_structured_panic() {
        let (mut p0, mut p1) = pair();
        p0.send(1, 4, 1u64);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: f64 = p1.recv(0, 4);
        }))
        .expect_err("type mismatch must panic");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic message is a String");
        assert!(msg.contains("mp rank 1"), "names the receiving rank: {msg}");
        assert!(msg.contains("rank 0"), "names the sender: {msg}");
        assert!(msg.contains("0x4"), "names the tag: {msg}");
        assert!(msg.contains("f64"), "names the expected type: {msg}");
    }

    #[test]
    fn peer_hangup_fails_fast_with_rank_and_tag() {
        let (p0, mut p1) = pair();
        drop(p0);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: u64 = p1.recv(0, 0x33);
        }))
        .expect_err("hangup must panic, not hang");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic message is a String");
        assert!(msg.contains("mp rank 1"), "names the waiter: {msg}");
        assert!(msg.contains("rank 0"), "names the dead peer: {msg}");
        assert!(msg.contains("0x33"), "names the tag: {msg}");
    }

    #[test]
    fn threads_mode_runs_collectives_across_sockets() {
        let m = MpMachine::new(4);
        let r = m.run_threads(|p| {
            let items: Vec<(usize, (usize, usize))> =
                (0..p.nprocs()).map(|dst| (dst, (p.rank(), dst))).collect();
            let exchanged = p.exchange(items);
            p.barrier();
            let gathered = p.allgather(vec![p.rank() as u64]);
            let sum = p.allreduce_sum_f64(0.1 * (p.rank() as f64 + 1.0));
            (exchanged, gathered, sum)
        });
        for (rank, (exchanged, gathered, sum)) in r.iter().enumerate() {
            let expected: Vec<(usize, usize)> = (0..4).map(|src| (src, rank)).collect();
            assert_eq!(*exchanged, expected, "rank-ordered exchange merge");
            assert_eq!(
                *gathered,
                (0..4).map(|r| vec![r as u64]).collect::<Vec<_>>()
            );
            assert_eq!(sum.to_bits(), r[0].2.to_bits(), "bitwise identical sums");
        }
    }

    #[test]
    fn threads_mode_is_deterministic_across_runs() {
        let run = || {
            MpMachine::new(3).run_threads(|p| {
                let items: Vec<(usize, u64)> = (0..p.nprocs())
                    .map(|d| (d, (p.rank() * 100 + d) as u64))
                    .collect();
                let exchanged = p.exchange(items);
                let sum = p.allreduce_sum_f64(exchanged.iter().sum::<u64>() as f64);
                (exchanged, sum.to_bits())
            })
        };
        assert_eq!(run(), run(), "results must not depend on socket timing");
    }

    #[test]
    fn wire_impl_for_range_like_tuples_survives_collectives() {
        // The inspector's exchange payload shape: routed tuples.
        let r = MpMachine::new(3).run_threads(|p| {
            let items: Vec<(usize, (usize, usize, usize))> = (0..p.nprocs())
                .map(|d| (d, (p.rank(), d, p.rank() * d)))
                .collect();
            p.exchange(items)
        });
        for (rank, got) in r.iter().enumerate() {
            let expected: Vec<(usize, usize, usize)> =
                (0..3).map(|src| (src, rank, src * rank)).collect();
            assert_eq!(*got, expected);
        }
    }

    #[test]
    #[should_panic(expected = "SPMD worker panicked")]
    fn worker_panic_fails_fast_across_the_mesh() {
        // Rank 0 panics while the others block in recv on it; its closing
        // sockets are the poison — peers see EOF and panic structurally
        // instead of deadlocking the join.
        MpMachine::new(3).run_threads(|p| {
            if p.rank() == 0 {
                panic!("deliberate worker failure");
            }
            let _: u64 = p.recv(0, 1);
        });
    }
}
