//! [`MpMachine`]: constructing multi-process runs.
//!
//! Two run modes share one transport (the same sockets, frames and
//! [`MpProc`] engine):
//!
//! * [`MpMachine::run`] — **real OS processes**, one per rank.  The
//!   workspace forbids `unsafe` (so no `fork`), so workers are created by
//!   *re-execution*: the coordinator re-runs its own test binary
//!   (`std::env::current_exe`) filtered to the calling test, with the rank
//!   in the environment.  The worker child deterministically re-executes
//!   the test body up to the same `run` call — naturally reconstructing
//!   every mesh, distribution and owner table *per rank*, which is exactly
//!   the shared-memory flush the multi-process backend exists to force —
//!   and at the `run` call becomes rank `r`, executes the SPMD program,
//!   ships its [`Wire`]-encoded result back over a control socket, and
//!   exits inside the call.
//! * [`MpMachine::run_threads`] — the same socket mesh with **threads** as
//!   rank containers.  Every byte still crosses the transport (encode →
//!   frame → socket → decode); only process isolation is waived.  This is
//!   the mode embedders with non-`Wire` result types (the verify/mc
//!   sweeps) use, and it needs no test-harness cooperation.
//!
//! ## Bootstrap
//!
//! Workers rendezvous in a private directory of Unix-domain sockets: rank
//! `r` listens on `r.sock`, connects to every lower rank (identifying
//! itself with a `TRANSPORT_HELLO` frame), and accepts one connection from
//! every higher rank.  In process mode the coordinator additionally listens
//! on `ctl.sock`, where each worker announces itself and later delivers a
//! `TRANSPORT_RESULT` or `TRANSPORT_ERROR` frame.  Every wait is bounded by
//! a deadline, so a worker that dies during bootstrap produces a structured
//! error naming the missing rank instead of a hang.

use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use kali_process::wire::{from_bytes, to_bytes};
use kali_process::{tags, Wire};

use crate::frame::{self, Frame, FrameError};
use crate::proc::MpProc;

/// How long bootstrap waits for peers to appear before failing structured.
const BOOTSTRAP_TIMEOUT: Duration = Duration::from_secs(20);

/// How long the coordinator waits for a worker's result frame.
const RESULT_TIMEOUT: Duration = Duration::from_secs(300);

/// Environment variable carrying a worker's rank (presence marks a worker).
const ENV_RANK: &str = "KALI_MP_RANK";
/// Environment variable carrying the run's rank count.
const ENV_NPROCS: &str = "KALI_MP_NPROCS";
/// Environment variable carrying the rendezvous directory.
const ENV_DIR: &str = "KALI_MP_DIR";
/// Environment variable carrying the entry label ([`MpMachine::run`]'s
/// `test` argument) so a test with several `run` calls pairs workers with
/// the right call site.
const ENV_ENTRY: &str = "KALI_MP_ENTRY";
/// Environment variable carrying the per-entry call sequence number, so a
/// test making several `run` calls under the same label (a loop over rank
/// counts or distributions) still pairs each worker with the exact call the
/// coordinator spawned it for.
const ENV_SEQ: &str = "KALI_MP_SEQ";

/// Monotonic run counter, part of the rendezvous directory name.
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// Per-entry-label `run`-call counters.  The coordinator and a re-executed
/// worker both count the calls their (deterministic) test body makes under
/// a given label, so "the N-th `run` call of test T" means the same call
/// site in both processes even when libtest runs other tests concurrently
/// in the coordinator.
fn next_call_seq(test: &str) -> u64 {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static SEQS: OnceLock<Mutex<HashMap<String, u64>>> = OnceLock::new();
    let mut seqs = SEQS
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("call-sequence table poisoned");
    let slot = seqs.entry(test.to_string()).or_insert(0);
    let seq = *slot;
    *slot += 1;
    seq
}

/// Remove the rendezvous directory when the owning scope exits.
struct DirGuard(PathBuf);

impl Drop for DirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A multi-process machine: `nprocs` SPMD ranks over the socket transport.
#[derive(Debug, Clone)]
pub struct MpMachine {
    nprocs: usize,
}

impl MpMachine {
    /// A machine with `nprocs` ranks.
    pub fn new(nprocs: usize) -> Self {
        assert!(nprocs > 0, "a machine needs at least one process");
        MpMachine { nprocs }
    }

    /// Number of ranks.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Run an SPMD program on **real OS processes**, one per rank, from
    /// inside a `#[test]`.
    ///
    /// `test` must be the calling test's full libtest path (what
    /// `cargo test <test> -- --exact` would match; for a test `fn ring()`
    /// inside `mod p2p` of an integration test, `"p2p::ring"`).  The
    /// coordinator re-executes the current binary with that filter once per
    /// rank; each child re-runs the test body up to this call,
    /// reconstructing all pre-run state per process, then becomes its rank
    /// here and **exits inside this call** after shipping its result.
    ///
    /// Returns `Some(results)` in rank order on the coordinator and `None`
    /// in a worker passing through a `run` call it was not spawned for: a
    /// test may make several `run` calls (loops over rank counts or
    /// distributions), and each spawned worker counts the calls it passes
    /// until it reaches the exact one — by entry label *and* per-label call
    /// sequence — its coordinator made.  Skipped calls run no SPMD code.
    ///
    /// A worker panic is re-reported on the coordinator with the worker's
    /// rank and panic message; a worker that dies silently produces a
    /// structured timeout error, never a hang.
    pub fn run<R, F>(&self, test: &str, f: F) -> Option<Vec<R>>
    where
        R: Wire,
        F: FnOnce(&mut MpProc) -> R,
    {
        let seq = next_call_seq(test);
        if let Ok(rank) = std::env::var(ENV_RANK) {
            let entry = std::env::var(ENV_ENTRY).unwrap_or_default();
            if entry != test {
                return None;
            }
            let want: u64 = std::env::var(ENV_SEQ)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("mp worker: {ENV_SEQ} missing or unparsable"));
            if seq != want {
                // An earlier (or later) `run` call of the same test; the
                // deterministic body will reach ours.
                return None;
            }
            let rank: usize = rank.parse().expect("KALI_MP_RANK must be a rank number");
            worker_main(rank, self.nprocs, test, f);
        }
        Some(coordinate(self.nprocs, test, seq))
    }

    /// Run an SPMD program over the socket transport with **threads** as
    /// rank containers: same mesh, frames, encode/decode and delivery
    /// engine as process mode — only process isolation is waived, which
    /// frees the result type from `Wire` (results return in-process).
    ///
    /// Deterministic like every backend: results depend only on inputs and
    /// ranks, never on scheduling.
    pub fn run_threads<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut MpProc) -> R + Sync,
    {
        let p = self.nprocs;
        let dir = rendezvous_dir("threads");
        std::fs::create_dir_all(&dir).expect("creating the mp rendezvous directory");
        let _guard = DirGuard(dir.clone());

        let mut slots: Vec<Option<R>> = (0..p).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for rank in 0..p {
                let dir = dir.clone();
                let f = &f;
                handles.push(scope.spawn(move || {
                    let mut proc = connect_mesh(&dir, rank, p);
                    // Results must not depend on whether a sibling is still
                    // mid-bootstrap; the mesh is fully connected per rank
                    // before `f` starts, so no further synchronisation is
                    // needed.
                    (rank, f(&mut proc))
                }));
            }
            for h in handles {
                let (rank, result) = h.join().expect("SPMD worker panicked");
                slots[rank] = Some(result);
            }
        });

        slots
            .into_iter()
            .map(|slot| slot.expect("missing worker result"))
            .collect()
    }
}

/// A fresh private rendezvous directory under the system temp dir.
fn rendezvous_dir(kind: &str) -> PathBuf {
    let seq = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("kali-mp-{kind}-{}-{}", std::process::id(), seq))
}

/// Build rank `rank`'s fully connected peer mesh in `dir` (see the module
/// docs for the rendezvous protocol) and wrap it in an [`MpProc`].
fn connect_mesh(dir: &Path, rank: usize, nprocs: usize) -> MpProc {
    let listener = UnixListener::bind(dir.join(format!("{rank}.sock")))
        .unwrap_or_else(|e| panic!("mp rank {rank}: binding the rendezvous socket: {e}"));
    let mut peers: Vec<Option<UnixStream>> = (0..nprocs).map(|_| None).collect();

    // Connect to every lower rank, announcing who we are.
    for (s, slot) in peers.iter_mut().enumerate().take(rank) {
        let stream = retry_connect(
            &dir.join(format!("{s}.sock")),
            &format!("mp rank {rank}"),
            &format!("rank {s}"),
        );
        frame::write_frame(
            &mut &stream,
            0,
            tags::TRANSPORT_HELLO,
            frame::type_hash::<u64>(),
            &to_bytes(&(rank as u64)),
        )
        .unwrap_or_else(|e| panic!("mp rank {rank}: sending hello to rank {s}: {e}"));
        *slot = Some(stream);
    }

    // Accept one connection from every higher rank; the hello frame says
    // which one, so acceptance order does not matter.
    listener
        .set_nonblocking(true)
        .expect("setting the rendezvous listener nonblocking");
    let deadline = Instant::now() + BOOTSTRAP_TIMEOUT;
    let mut remaining = nprocs - 1 - rank;
    while remaining > 0 {
        match listener.accept() {
            Ok((stream, _)) => {
                stream
                    .set_nonblocking(false)
                    .expect("restoring blocking mode on an accepted peer stream");
                let s = read_hello(&stream, &format!("mp rank {rank}"));
                assert!(
                    s > rank && s < nprocs,
                    "mp rank {rank}: hello from unexpected rank {s} of {nprocs}"
                );
                assert!(
                    peers[s].is_none(),
                    "mp rank {rank}: rank {s} connected twice"
                );
                peers[s] = Some(stream);
                remaining -= 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    let missing: Vec<usize> =
                        (rank + 1..nprocs).filter(|&s| peers[s].is_none()).collect();
                    panic!(
                        "mp rank {rank}: ranks {missing:?} did not connect within \
                         {BOOTSTRAP_TIMEOUT:?} (peer died during bootstrap?)"
                    );
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(e) => panic!("mp rank {rank}: accepting a peer connection: {e}"),
        }
    }

    MpProc::from_peer_streams(rank, nprocs, peers)
}

/// Connect to a peer's rendezvous socket, retrying until it exists.
/// `who`/`peer` only label the failure message.
fn retry_connect(path: &Path, who: &str, peer: &str) -> UnixStream {
    let deadline = Instant::now() + BOOTSTRAP_TIMEOUT;
    loop {
        match UnixStream::connect(path) {
            Ok(stream) => return stream,
            Err(e) => {
                if Instant::now() >= deadline {
                    panic!("{who}: could not connect to {peer} within {BOOTSTRAP_TIMEOUT:?}: {e}");
                }
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }
}

/// Read and validate one hello frame, returning the announcing rank.
/// `me` only labels failure messages.
fn read_hello(mut stream: &UnixStream, me: &str) -> usize {
    let frame = frame::read_frame(&mut stream)
        .unwrap_or_else(|e| panic!("{me}: reading a peer hello: {e}"));
    assert_eq!(
        frame.tag,
        tags::TRANSPORT_HELLO,
        "{me}: first frame on a peer connection must be a hello, got tag {:#x}",
        frame.tag
    );
    let peer: u64 = from_bytes(&frame.payload)
        .unwrap_or_else(|e| panic!("{me}: undecodable hello payload: {e}"));
    usize::try_from(peer).expect("rank fits usize")
}

// ----------------------------------------------------------------
// Process mode: worker side
// ----------------------------------------------------------------

/// Worker entry: build the mesh, run the program, ship the result (or the
/// panic) over the control socket, and exit the process.  Never returns.
fn worker_main<R, F>(rank: usize, nprocs: usize, test: &str, f: F) -> !
where
    R: Wire,
    F: FnOnce(&mut MpProc) -> R,
{
    let env_nprocs: usize = std::env::var(ENV_NPROCS)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("mp worker: {ENV_NPROCS} missing or unparsable"));
    assert_eq!(
        env_nprocs, nprocs,
        "mp worker rank {rank}: coordinator ran `{test}` with {env_nprocs} ranks but this \
         worker's run call says {nprocs} — nondeterministic test body?"
    );
    let dir = PathBuf::from(
        std::env::var(ENV_DIR).unwrap_or_else(|_| panic!("mp worker: {ENV_DIR} missing")),
    );

    let ctl = retry_connect(
        &dir.join("ctl.sock"),
        &format!("mp worker rank {rank}"),
        "the coordinator",
    );
    frame::write_frame(
        &mut &ctl,
        0,
        tags::TRANSPORT_HELLO,
        frame::type_hash::<u64>(),
        &to_bytes(&(rank as u64)),
    )
    .unwrap_or_else(|e| panic!("mp worker rank {rank}: control hello failed: {e}"));

    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut proc = connect_mesh(&dir, rank, nprocs);
        let result = f(&mut proc);
        // Dropping the proc joins the writer threads, so every frame this
        // rank sent is on the wire (or its peer is known-gone) before the
        // sockets close — peers still draining see data, then EOF.
        drop(proc);
        result
    }));

    match outcome {
        Ok(result) => {
            frame::write_frame(
                &mut &ctl,
                0,
                tags::TRANSPORT_RESULT,
                frame::type_hash::<R>(),
                &to_bytes(&result),
            )
            .unwrap_or_else(|e| panic!("mp worker rank {rank}: result delivery failed: {e}"));
            std::process::exit(0);
        }
        Err(cause) => {
            let message = panic_message(cause.as_ref());
            let _ = frame::write_frame(
                &mut &ctl,
                0,
                tags::TRANSPORT_ERROR,
                frame::type_hash::<String>(),
                &to_bytes(&message),
            );
            std::process::exit(101);
        }
    }
}

/// Render a panic payload as text (panics carry `&str` or `String` in
/// practice; anything else gets a placeholder).
fn panic_message(cause: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = cause.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = cause.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

// ----------------------------------------------------------------
// Process mode: coordinator side
// ----------------------------------------------------------------

/// Spawn one worker process per rank, collect every rank's result from the
/// control socket, and reap the children.
fn coordinate<R: Wire>(nprocs: usize, test: &str, seq: u64) -> Vec<R> {
    let dir = rendezvous_dir("proc");
    std::fs::create_dir_all(&dir).expect("creating the mp rendezvous directory");
    let _guard = DirGuard(dir.clone());
    let ctl = UnixListener::bind(dir.join("ctl.sock")).expect("binding the mp control socket");
    ctl.set_nonblocking(true)
        .expect("setting the control listener nonblocking");

    let exe = std::env::current_exe().expect("locating the current test binary");
    let mut children = Vec::with_capacity(nprocs);
    for rank in 0..nprocs {
        let child = std::process::Command::new(&exe)
            .arg(test)
            .args(["--exact", "--test-threads", "1", "--quiet"])
            .env(ENV_RANK, rank.to_string())
            .env(ENV_NPROCS, nprocs.to_string())
            .env(ENV_DIR, &dir)
            .env(ENV_ENTRY, test)
            .env(ENV_SEQ, seq.to_string())
            .stdin(std::process::Stdio::null())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .unwrap_or_else(|e| panic!("spawning mp worker rank {rank}: {e}"));
        children.push(child);
    }

    // Handshake: every worker announces itself on its own control
    // connection.  A worker that dies first (e.g. the test filter matched
    // nothing) is caught by the deadline + exit-status sweep.
    let deadline = Instant::now() + BOOTSTRAP_TIMEOUT;
    let mut streams: Vec<Option<UnixStream>> = (0..nprocs).map(|_| None).collect();
    let mut connected = 0usize;
    while connected < nprocs {
        match ctl.accept() {
            Ok((stream, _)) => {
                stream
                    .set_nonblocking(false)
                    .expect("restoring blocking mode on a control stream");
                stream
                    .set_read_timeout(Some(RESULT_TIMEOUT))
                    .expect("setting the control stream read timeout");
                let rank = read_hello(&stream, "mp coordinator");
                assert!(rank < nprocs, "control hello from unknown rank {rank}");
                assert!(
                    streams[rank].is_none(),
                    "worker rank {rank} connected to the control socket twice"
                );
                streams[rank] = Some(stream);
                connected += 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                sweep_children(&mut children, test);
                if Instant::now() >= deadline {
                    let missing: Vec<usize> =
                        (0..nprocs).filter(|&r| streams[r].is_none()).collect();
                    panic!(
                        "mp workers {missing:?} never reached the run call for test \
                         `{test}` within {BOOTSTRAP_TIMEOUT:?} — is `{test}` the calling \
                         test's exact libtest path?"
                    );
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => panic!("accepting an mp control connection: {e}"),
        }
    }

    // Collect one result (or error) frame per rank.  Reading rank by rank
    // is deadlock-free: each worker produces its frame independently, and
    // the kernel buffers a finished worker's frame until we get to it.
    let mut results: Vec<Option<R>> = (0..nprocs).map(|_| None).collect();
    for rank in 0..nprocs {
        let mut stream = streams[rank].take().expect("control stream present");
        let Frame {
            tag,
            type_hash,
            payload,
            ..
        } = match frame::read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(FrameError::Closed) => {
                panic!("mp worker rank {rank} exited without delivering a result for `{test}`")
            }
            Err(e) => panic!("mp worker rank {rank}: corrupt result frame: {e}"),
        };
        match tag {
            tags::TRANSPORT_RESULT => {
                assert_eq!(
                    type_hash,
                    frame::type_hash::<R>(),
                    "mp worker rank {rank} returned a different result type \
                     (expected {})",
                    std::any::type_name::<R>()
                );
                let value: R = from_bytes(&payload).unwrap_or_else(|e| {
                    panic!("mp worker rank {rank}: undecodable result payload: {e}")
                });
                results[rank] = Some(value);
            }
            tags::TRANSPORT_ERROR => {
                let message: String = from_bytes(&payload)
                    .unwrap_or_else(|_| "<undecodable panic message>".to_string());
                // Tear the fleet down quietly: killed siblings exit with a
                // signal, which must not mask the worker's own message.
                for child in &mut children {
                    let _ = child.kill();
                }
                for child in &mut children {
                    let _ = child.wait();
                }
                panic!("mp worker rank {rank} panicked: {message}");
            }
            other => panic!(
                "mp worker rank {rank}: unexpected control frame tag {other:#x} \
                 (wanted a result or error frame)"
            ),
        }
    }

    reap(&mut children);
    results
        .into_iter()
        .map(|slot| slot.expect("missing worker result"))
        .collect()
}

/// Fail fast if any worker already exited unsuccessfully (e.g. the re-exec
/// test filter matched nothing, so the child ran zero tests and quit).
fn sweep_children(children: &mut [std::process::Child], test: &str) {
    for (rank, child) in children.iter_mut().enumerate() {
        if let Ok(Some(status)) = child.try_wait() {
            if !status.success() {
                panic!(
                    "mp worker rank {rank} exited with {status} before reaching the run \
                     call for `{test}`"
                );
            }
        }
    }
}

/// Wait for every child, surfacing nonzero exits (panics are reported via
/// error frames before this; a nonzero exit *here* means a worker died
/// after delivering its result, which still voids the run).
fn reap(children: &mut Vec<std::process::Child>) {
    for (rank, child) in children.iter_mut().enumerate() {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => panic!("mp worker rank {rank} exited with {status}"),
            Err(e) => panic!("waiting for mp worker rank {rank}: {e}"),
        }
    }
    children.clear();
}
