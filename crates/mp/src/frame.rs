//! The mp wire format: length-prefixed frames with tag-addressed delivery.
//!
//! Every message between two mp endpoints — program traffic and transport
//! control alike — travels as one *frame*:
//!
//! ```text
//! offset  size  field
//!      0     4  payload length   (u32, little-endian, ≤ MAX_PAYLOAD)
//!      4     8  sequence number  (u64, per-(src, dst) send order witness)
//!     12     8  tag              (u64, the Process tag space)
//!     20     4  type hash        (u32, FNV-1a of the payload's type name)
//!     24     …  payload          (the Wire encoding of one value)
//! ```
//!
//! The header is fixed-size so a reader always knows how much to ask the
//! kernel for; the payload length bounds the second read exactly.  The type
//! hash is a cheap end-to-end check that the sender's `T` and the receiver's
//! `T` agree — both ends of an mp run execute the *same binary*, so equal
//! types hash equally and a mismatch is always a protocol error, reported
//! with both type names' hashes instead of a garbage decode.
//!
//! Reading is **total**: every failure mode — peer hangup, truncated
//! header, truncated or oversized payload — is a structured [`FrameError`],
//! never a panic or an unbounded read.  The [`MpProc`](crate::MpProc)
//! layer adds the rank context when it turns one of these into a fatal
//! error.

use std::io::{self, Read, Write};

use kali_process::Tag;

/// Fixed size of the frame header in bytes.
pub const HEADER_LEN: usize = 24;

/// Upper bound on a frame payload (1 GiB).  A corrupted length prefix is
/// rejected against this bound *before* any allocation or read, so garbage
/// on the wire costs a structured error, not an OOM or a multi-gigabyte
/// read loop.
pub const MAX_PAYLOAD: u32 = 1 << 30;

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Per-(src, dst) send sequence number (FIFO witness).
    pub seq: u64,
    /// Message tag ([`kali_process::tags`] partitions the space).
    pub tag: Tag,
    /// FNV-1a hash of the payload's Rust type name ([`type_hash`]).
    pub type_hash: u32,
    /// The payload: the [`Wire`](kali_process::Wire) encoding of one value.
    pub payload: Vec<u8>,
}

/// A transport-layer failure, structured so callers can name the offending
/// endpoint and tag instead of hanging or reporting a bare I/O error.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly (EOF at a frame boundary).
    Closed,
    /// The connection ended mid-header: `got` of [`HEADER_LEN`] bytes
    /// arrived before EOF — a truncated length prefix.
    TruncatedHeader {
        /// Header bytes that did arrive.
        got: usize,
    },
    /// The connection ended mid-payload.
    TruncatedPayload {
        /// Tag from the (complete) header.
        tag: Tag,
        /// Payload bytes the header promised.
        expected: usize,
        /// Payload bytes that arrived before EOF.
        got: usize,
    },
    /// The header's length prefix exceeds [`MAX_PAYLOAD`] — corrupt, since
    /// no runtime message approaches the bound.
    OversizedPayload {
        /// Tag from the header.
        tag: Tag,
        /// The offending length prefix.
        len: u32,
    },
    /// The operating system reported an I/O error.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "peer closed the connection"),
            FrameError::TruncatedHeader { got } => write!(
                f,
                "truncated frame header: {got} of {HEADER_LEN} bytes before EOF \
                 (truncated length prefix)"
            ),
            FrameError::TruncatedPayload { tag, expected, got } => write!(
                f,
                "truncated frame payload for tag {tag:#x}: {got} of {expected} bytes before EOF"
            ),
            FrameError::OversizedPayload { tag, len } => write!(
                f,
                "corrupt frame header for tag {tag:#x}: length prefix {len} exceeds the \
                 {MAX_PAYLOAD}-byte bound"
            ),
            FrameError::Io(e) => write!(f, "transport i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// FNV-1a hash of `T`'s type name — the frame header's end-to-end type
/// check.  Both endpoints of an mp run execute the same binary, so
/// `std::any::type_name` is identical on both sides for the same `T`.
pub fn type_hash<T: 'static>() -> u32 {
    fnv1a(std::any::type_name::<T>().as_bytes())
}

/// FNV-1a over raw bytes (32-bit).
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Serialise one frame into a contiguous byte buffer (header + payload),
/// ready for a single `write_all`.
pub fn frame_bytes(seq: u64, tag: Tag, type_hash: u32, payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("frame payload exceeds u32::MAX bytes");
    assert!(
        len <= MAX_PAYLOAD,
        "frame payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte bound"
    );
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&type_hash.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Write one frame (one `write_all` of header + payload).
pub fn write_frame(
    w: &mut impl Write,
    seq: u64,
    tag: Tag,
    type_hash: u32,
    payload: &[u8],
) -> io::Result<()> {
    w.write_all(&frame_bytes(seq, tag, type_hash, payload))
}

/// Read exactly `buf.len()` bytes, reporting how many arrived if the stream
/// ends first.  `Ok(n)` with `n < buf.len()` means EOF after `n` bytes.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Ok(filled),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Read one frame.  Total: EOF at a frame boundary is [`FrameError::Closed`],
/// EOF anywhere inside a frame is a structured truncation, and a corrupt
/// length prefix is rejected before any allocation.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    let got = read_exact_or_eof(r, &mut header)?;
    if got == 0 {
        return Err(FrameError::Closed);
    }
    if got < HEADER_LEN {
        return Err(FrameError::TruncatedHeader { got });
    }
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4-byte slice"));
    let seq = u64::from_le_bytes(header[4..12].try_into().expect("8-byte slice"));
    let tag = u64::from_le_bytes(header[12..20].try_into().expect("8-byte slice"));
    let type_hash = u32::from_le_bytes(header[20..24].try_into().expect("4-byte slice"));
    if len > MAX_PAYLOAD {
        return Err(FrameError::OversizedPayload { tag, len });
    }
    let expected = len as usize;
    let mut payload = vec![0u8; expected];
    let got = read_exact_or_eof(r, &mut payload)?;
    if got < expected {
        return Err(FrameError::TruncatedPayload { tag, expected, got });
    }
    Ok(Frame {
        seq,
        tag,
        type_hash,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let bytes = frame_bytes(7, 0x1234, type_hash::<u64>(), &[1, 2, 3]);
        assert_eq!(bytes.len(), HEADER_LEN + 3);
        let frame = read_frame(&mut bytes.as_slice()).expect("round trip");
        assert_eq!(frame.seq, 7);
        assert_eq!(frame.tag, 0x1234);
        assert_eq!(frame.type_hash, type_hash::<u64>());
        assert_eq!(frame.payload, vec![1, 2, 3]);
    }

    #[test]
    fn empty_payload_round_trips() {
        let bytes = frame_bytes(0, 5, 0, &[]);
        let frame = read_frame(&mut bytes.as_slice()).expect("round trip");
        assert!(frame.payload.is_empty());
    }

    #[test]
    fn eof_at_frame_boundary_is_closed() {
        let empty: &[u8] = &[];
        assert!(matches!(
            read_frame(&mut { empty }),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn truncated_header_is_structured() {
        // A length prefix cut short mid-header: the negative-path contract
        // is a structured error naming how much arrived, never a hang.
        let bytes = frame_bytes(1, 9, 0, &[1, 2, 3]);
        let err = read_frame(&mut &bytes[..10]).expect_err("must fail");
        match err {
            FrameError::TruncatedHeader { got } => assert_eq!(got, 10),
            other => panic!("expected TruncatedHeader, got {other}"),
        }
        assert!(err.to_string().contains("truncated length prefix"));
    }

    #[test]
    fn truncated_payload_names_the_tag() {
        let bytes = frame_bytes(1, 0xBEEF, 0, &[1, 2, 3, 4]);
        let err = read_frame(&mut &bytes[..HEADER_LEN + 2]).expect_err("must fail");
        match err {
            FrameError::TruncatedPayload { tag, expected, got } => {
                assert_eq!(tag, 0xBEEF);
                assert_eq!(expected, 4);
                assert_eq!(got, 2);
            }
            other => panic!("expected TruncatedPayload, got {other}"),
        }
        assert!(err.to_string().contains("0xbeef"));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut bytes = frame_bytes(1, 3, 0, &[]);
        bytes[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        match read_frame(&mut bytes.as_slice()).expect_err("must fail") {
            FrameError::OversizedPayload { tag, len } => {
                assert_eq!(tag, 3);
                assert_eq!(len, u32::MAX);
            }
            other => panic!("expected OversizedPayload, got {other}"),
        }
    }

    #[test]
    fn type_hash_distinguishes_types_and_is_stable() {
        assert_eq!(type_hash::<u64>(), type_hash::<u64>());
        assert_ne!(type_hash::<u64>(), type_hash::<f64>());
        assert_ne!(type_hash::<Vec<f64>>(), type_hash::<f64>());
    }
}
