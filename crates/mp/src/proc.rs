//! [`MpProc`]: the [`Process`] implementation over socket-connected OS
//! processes.
//!
//! One `MpProc` owns this rank's end of a full peer mesh: a connected
//! stream per peer, split into a buffered reader (owned here, read only
//! when this rank blocks in `recv`) and a writer thread (so `send` never
//! blocks on a peer's kernel buffer — the [`Process`] contract).  Message
//! matching mirrors the native backend: a receive that finds a frame for a
//! different tag parks it in a per-`(src, tag)` FIFO pending map, so
//! same-channel delivery order is exactly send order.
//!
//! Every transport failure is fatal and **structured**: a truncated or
//! corrupt frame, a type-hash mismatch, or a peer hangup panics with the
//! receiving rank, the peer rank and the tag in the message — the
//! fail-fast analogue of the native backend's poison packets (here the
//! closed socket itself is the poison).

use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, Write};
use std::os::unix::net::UnixStream;
use std::sync::mpsc;
use std::thread::JoinHandle;

use kali_process::trace::{Event, EventKind, TraceRecorder};
use kali_process::wire::{from_bytes, to_bytes};
use kali_process::{tags, Counters, Process, Tag, Wire};

use crate::frame::{self, Frame, FrameError, HEADER_LEN};

/// One peer's sending half: an unbounded queue drained by a writer thread.
struct Writer {
    tx: Option<mpsc::Sender<Vec<u8>>>,
    handle: Option<JoinHandle<()>>,
}

impl Writer {
    /// Spawn the writer thread for one peer stream.  The thread drains the
    /// queue with blocking `write_all`s; a write error means the peer is
    /// gone, so the thread discards the rest of the queue and exits (the
    /// receiving side reports the failure with full context).
    fn spawn(mut stream: UnixStream) -> Writer {
        let (tx, rx) = mpsc::channel::<Vec<u8>>();
        let handle = std::thread::spawn(move || {
            for bytes in rx {
                if stream.write_all(&bytes).is_err() {
                    break;
                }
            }
        });
        Writer {
            tx: Some(tx),
            handle: Some(handle),
        }
    }
}

/// One parked out-of-order frame: send sequence number, type hash, payload.
type ParkedQueue = VecDeque<(u64, u32, Vec<u8>)>;

/// Per-process handle of a multi-process run — the socket-transport
/// implementation of [`Process`].
pub struct MpProc {
    rank: usize,
    nprocs: usize,
    /// Buffered reader per peer (`None` at this rank's own slot).
    readers: Vec<Option<BufReader<UnixStream>>>,
    /// Writer-thread handle per peer (`None` at this rank's own slot).
    writers: Vec<Option<Writer>>,
    /// Out-of-order arrivals, FIFO per `(src, tag)` — same structure and
    /// contract as the native backend's pending buffer.
    pending: HashMap<(usize, Tag), ParkedQueue>,
    pending_len: usize,
    queue_peak: u64,
    /// Next per-destination send sequence number.
    send_seqs: Vec<u64>,
    /// Debug-build FIFO witness: last delivered sequence per `(src, tag)`.
    recv_seqs: HashMap<(usize, Tag), u64>,
    /// Monotonic counter deriving collective tags (lockstep across ranks).
    coll_seq: u64,
    /// Bytes actually written to the transport by this rank: encoded
    /// payloads plus frame headers, surfaced as `Counters::wire_bytes`.
    wire_bytes: u64,
    recorder: TraceRecorder,
}

impl std::fmt::Debug for MpProc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpProc")
            .field("rank", &self.rank)
            .field("nprocs", &self.nprocs)
            .field("pending_len", &self.pending_len)
            .field("wire_bytes", &self.wire_bytes)
            .finish_non_exhaustive()
    }
}

impl MpProc {
    /// Build a process handle from pre-connected peer streams.
    ///
    /// `peers[s]` must be a stream whose other end belongs to rank `s`;
    /// the slot at this rank's own index must be `None` (self-sends bypass
    /// the transport).  [`MpMachine`](crate::MpMachine) calls this after
    /// the mesh bootstrap; tests may call it directly over
    /// [`UnixStream::pair`] halves.
    pub fn from_peer_streams(rank: usize, nprocs: usize, peers: Vec<Option<UnixStream>>) -> MpProc {
        assert!(rank < nprocs, "rank {rank} out of range for {nprocs} procs");
        assert_eq!(peers.len(), nprocs, "one peer slot per rank");
        assert!(peers[rank].is_none(), "a rank has no stream to itself");
        let mut readers = Vec::with_capacity(nprocs);
        let mut writers = Vec::with_capacity(nprocs);
        for (s, peer) in peers.into_iter().enumerate() {
            match peer {
                Some(stream) => {
                    assert_ne!(s, rank, "a rank has no stream to itself");
                    let write_half = stream
                        .try_clone()
                        .expect("cloning a unix stream for the writer thread");
                    readers.push(Some(BufReader::new(stream)));
                    writers.push(Some(Writer::spawn(write_half)));
                }
                None => {
                    readers.push(None);
                    writers.push(None);
                }
            }
        }
        MpProc {
            rank,
            nprocs,
            readers,
            writers,
            pending: HashMap::new(),
            pending_len: 0,
            queue_peak: 0,
            send_seqs: vec![0; nprocs],
            recv_seqs: HashMap::new(),
            coll_seq: 0,
            wire_bytes: 0,
            recorder: TraceRecorder::default(),
        }
    }

    /// Encode and ship one value.  Never blocks: the frame goes to the
    /// destination's writer queue (or straight to the pending buffer for a
    /// self-send).
    fn send_frame<T: Wire>(&mut self, dst: usize, tag: Tag, value: &T) {
        assert!(dst < self.nprocs, "send to rank {dst} of {}", self.nprocs);
        let seq = self.send_seqs[dst];
        self.send_seqs[dst] += 1;
        self.recorder
            .record(self.rank, EventKind::Send { dst, tag });
        let payload = to_bytes(value);
        let tyh = frame::type_hash::<T>();
        if dst == self.rank {
            // Self-sends bypass the transport but keep the encode/decode
            // round trip, so a self-message exercises the same codec path.
            self.park_pending(self.rank, tag, seq, tyh, payload);
            return;
        }
        self.wire_bytes += (HEADER_LEN + payload.len()) as u64;
        let bytes = frame::frame_bytes(seq, tag, tyh, &payload);
        let tx = self.writers[dst]
            .as_ref()
            .and_then(|w| w.tx.as_ref())
            .expect("writer thread present for every peer");
        if tx.send(bytes).is_err() {
            panic!(
                "mp rank {me}: destination rank {dst} hung up (send tag {tag:#x})",
                me = self.rank
            );
        }
    }

    /// Park an out-of-order arrival, debug-asserting per-channel FIFO.
    fn park_pending(&mut self, src: usize, tag: Tag, seq: u64, tyh: u32, payload: Vec<u8>) {
        let queue = self.pending.entry((src, tag)).or_default();
        if cfg!(debug_assertions) {
            if let Some(&(back, _, _)) = queue.back() {
                debug_assert!(
                    seq > back,
                    "pending queue ({src}, {tag:#x}) reordered: seq {seq} after {back}"
                );
            }
        }
        queue.push_back((seq, tyh, payload));
        self.pending_len += 1;
        self.queue_peak = self.queue_peak.max(self.pending_len as u64);
    }

    /// Pull one buffered frame for `(src, tag)`, dropping emptied queues.
    fn take_pending(&mut self, src: usize, tag: Tag) -> Option<(u64, u32, Vec<u8>)> {
        let queue = self.pending.get_mut(&(src, tag))?;
        let entry = queue.pop_front();
        if queue.is_empty() {
            self.pending.remove(&(src, tag));
        }
        if entry.is_some() {
            self.pending_len -= 1;
        }
        entry
    }

    /// Debug-build FIFO witness (same contract as the native backend).
    fn note_delivery(&mut self, src: usize, tag: Tag, seq: u64) {
        if cfg!(debug_assertions) {
            if let Some(&prev) = self.recv_seqs.get(&(src, tag)) {
                debug_assert!(
                    seq > prev,
                    "channel ({src}, {tag:#x}) delivered seq {seq} after {prev}: not FIFO"
                );
            }
            self.recv_seqs.insert((src, tag), seq);
        }
    }

    /// Block until the frame matching `(src, tag)` arrives and decode it.
    ///
    /// Frames for other tags from the same peer are parked in arrival
    /// (= send) order.  Every transport or codec failure panics with the
    /// receiving rank, the peer rank and the tag — structured fail-fast
    /// instead of a hang.
    fn recv_frame<T: Wire>(&mut self, src: usize, tag: Tag) -> T {
        assert!(src < self.nprocs, "recv from rank {src} of {}", self.nprocs);
        let me = self.rank;
        let (seq, tyh, payload) = match self.take_pending(src, tag) {
            Some(entry) => entry,
            None => {
                // Take the reader out of its slot so frames for other tags
                // can be parked (a mutable `self` call) mid-loop; restored
                // below.  A panic skips the restore — we are dying anyway.
                let mut reader = self.readers[src]
                    .take()
                    .unwrap_or_else(|| panic!("mp rank {me}: no transport to rank {src}"));
                let entry = loop {
                    let Frame {
                        seq,
                        tag: got_tag,
                        type_hash,
                        payload,
                    } = match frame::read_frame(&mut reader) {
                        Ok(frame) => frame,
                        Err(FrameError::Closed) => panic!(
                            "mp rank {me}: peer rank {src} hung up while rank {me} waited \
                             for tag {tag:#x} (peer exited or panicked mid-run)"
                        ),
                        Err(e) => panic!(
                            "mp rank {me}: corrupt frame from rank {src} while waiting for \
                             tag {tag:#x}: {e}"
                        ),
                    };
                    if got_tag == tag {
                        break (seq, type_hash, payload);
                    }
                    self.park_pending(src, got_tag, seq, type_hash, payload);
                };
                self.readers[src] = Some(reader);
                entry
            }
        };
        if tyh != frame::type_hash::<T>() {
            panic!(
                "mp rank {me}: message type mismatch from rank {src} on tag {tag:#x}: \
                 expected {expected} (hash {eh:#010x}), frame carries hash {gh:#010x}",
                expected = std::any::type_name::<T>(),
                eh = frame::type_hash::<T>(),
                gh = tyh,
            );
        }
        self.note_delivery(src, tag, seq);
        self.recorder.record(me, EventKind::Recv { src, tag });
        from_bytes::<T>(&payload).unwrap_or_else(|e| {
            panic!(
                "mp rank {me}: undecodable payload from rank {src} on tag {tag:#x} \
                 (type {ty}): {e}",
                ty = std::any::type_name::<T>(),
            )
        })
    }

    fn next_collective_tag(&mut self) -> Tag {
        let tag = tags::collective_tag(self.coll_seq);
        self.coll_seq += 1;
        tag
    }
}

impl Drop for MpProc {
    /// Flush the transport: drop every writer queue (ending its thread once
    /// the queue drains) and join the threads, so every frame queued before
    /// the drop is on the wire — or its peer is known-gone — before the
    /// sockets close.
    fn drop(&mut self) {
        for writer in self.writers.iter_mut().flatten() {
            writer.tx.take();
        }
        for writer in self.writers.iter_mut().flatten() {
            if let Some(handle) = writer.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

impl Process for MpProc {
    fn rank(&self) -> usize {
        self.rank
    }

    fn nprocs(&self) -> usize {
        self.nprocs
    }

    fn send<T: Wire>(&mut self, dst: usize, tag: Tag, value: T) {
        self.send_frame(dst, tag, &value);
    }

    fn send_vec<T: Wire>(&mut self, dst: usize, tag: Tag, values: Vec<T>) {
        self.send_frame(dst, tag, &values);
    }

    fn recv<T: Wire>(&mut self, src: usize, tag: Tag) -> T {
        self.recv_frame(src, tag)
    }

    /// Dissemination barrier: `⌈log2 P⌉` rounds of shifted sends — the same
    /// round structure and round tags as the native backend, so the two
    /// transports are protocol-identical under the verifier.
    fn barrier(&mut self) {
        self.recorder
            .record(self.rank, EventKind::Collective { op: "barrier" });
        let n = self.nprocs;
        if n == 1 {
            return;
        }
        let tag = self.next_collective_tag();
        let me = self.rank;
        let mut k = 1usize;
        while k < n {
            let to = (me + k) % n;
            let from = (me + n - k) % n;
            let round_tag = tag + ((k as u64) << 32);
            self.send_frame(to, round_tag, &0u8);
            let _: u8 = self.recv_frame(from, round_tag);
            k <<= 1;
        }
    }

    /// Direct personalised all-to-all with the rank-ordered merge — item
    /// order identical to dmsim and native regardless of socket timing.
    fn exchange<T: Wire>(&mut self, items: Vec<(usize, T)>) -> Vec<T> {
        self.recorder
            .record(self.rank, EventKind::Collective { op: "exchange" });
        let n = self.nprocs;
        let me = self.rank;
        let tag = self.next_collective_tag();
        let mut buckets: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
        for (dst, item) in items {
            assert!(dst < n, "routed item addressed to rank {dst} of {n}");
            buckets[dst].push(item);
        }
        let mut mine = Some(std::mem::take(&mut buckets[me]));
        for (dst, bucket) in buckets.iter().enumerate() {
            if dst != me {
                self.send_frame(dst, tag, bucket);
            }
        }
        let mut out: Vec<T> = Vec::new();
        for src in 0..n {
            if src == me {
                out.extend(mine.take().expect("own bucket consumed twice"));
            } else {
                let incoming: Vec<T> = self.recv_frame(src, tag);
                out.extend(incoming);
            }
        }
        out
    }

    fn allgather<T: Clone + Wire>(&mut self, items: Vec<T>) -> Vec<Vec<T>> {
        self.recorder
            .record(self.rank, EventKind::Collective { op: "allgather" });
        let n = self.nprocs;
        let me = self.rank;
        let tag = self.next_collective_tag();
        // The frame layer encodes (never moves) the payload, so one encoded
        // send per peer — no clone chain like the in-process backends need.
        for dst in 0..n {
            if dst != me {
                self.send_frame(dst, tag, &items);
            }
        }
        let mut mine = Some(items);
        (0..n)
            .map(|src| {
                if src == me {
                    mine.take().expect("own contribution consumed twice")
                } else {
                    self.recv_frame(src, tag)
                }
            })
            .collect()
    }

    // `allreduce` / `allgather_doubling` use the trait's provided
    // binomial-tree implementations over this backend's `send`/`recv`, so
    // the bracketing (and the bits) match dmsim, native and the sequential
    // replay.

    /// The mp backend meters what only a real transport can: bytes on the
    /// wire (`wire_bytes`), plus the pending-buffer high-water mark.
    fn counters(&self) -> Counters {
        Counters {
            queue_peak: self.queue_peak,
            wire_bytes: self.wire_bytes,
            ..Counters::default()
        }
    }

    fn trace_start(&mut self) {
        self.recorder.start();
    }

    fn trace_take(&mut self) -> Vec<Event> {
        self.recorder.take()
    }

    fn trace_active(&self) -> bool {
        self.recorder.is_active()
    }

    fn trace_emit(&mut self, kind: EventKind) {
        self.recorder.record(self.rank, kind);
    }
}
