//! Sequential reference relaxation (numerical ground truth).

use meshes::AdjacencyMesh;

/// Run `sweeps` Jacobi sweeps over the mesh in a single address space.
///
/// Floating-point operations are performed in the same (node, neighbour)
/// order as both the hand-coded and the Kali versions, so all three produce
/// bit-identical results.
pub fn sequential_jacobi(mesh: &AdjacencyMesh, initial: &[f64], sweeps: usize) -> Vec<f64> {
    assert_eq!(
        initial.len(),
        mesh.len(),
        "initial field must cover the mesh"
    );
    let mut a = initial.to_vec();
    let mut old_a = vec![0.0f64; mesh.len()];
    for _ in 0..sweeps {
        old_a.copy_from_slice(&a);
        for i in 0..mesh.len() {
            let deg = mesh.degree(i);
            let mut x = 0.0f64;
            for j in 0..deg {
                x += mesh.coefs(i)[j] * old_a[mesh.neighbors(i)[j] as usize];
            }
            if deg > 0 {
                a[i] = x;
            }
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshes::RegularGrid;

    #[test]
    fn zero_sweeps_returns_initial_field() {
        let grid = RegularGrid::square(6);
        let mesh = grid.five_point_mesh();
        let initial = grid.initial_field();
        assert_eq!(sequential_jacobi(&mesh, &initial, 0), initial);
    }

    #[test]
    fn relaxation_smooths_towards_boundary_values() {
        // With zero boundary and averaging coefficients, the interior decays
        // towards zero.
        let grid = RegularGrid::square(10);
        let mesh = grid.five_point_mesh();
        let initial = grid.initial_field();
        let after = sequential_jacobi(&mesh, &initial, 200);
        let norm_before: f64 = initial.iter().map(|v| v * v).sum();
        let norm_after: f64 = after.iter().map(|v| v * v).sum();
        assert!(
            norm_after < norm_before * 0.5,
            "{norm_after} vs {norm_before}"
        );
    }

    #[test]
    fn isolated_nodes_keep_their_values() {
        let mesh =
            AdjacencyMesh::from_lists(&[vec![], vec![2], vec![1]], &[vec![], vec![1.0], vec![1.0]]);
        let out = sequential_jacobi(&mesh, &[5.0, 1.0, 3.0], 1);
        assert_eq!(out[0], 5.0);
        assert_eq!(out[1], 3.0);
        assert_eq!(out[2], 1.0);
    }
}
