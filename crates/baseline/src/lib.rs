//! # baseline — comparators for the Kali reproduction
//!
//! The paper's pitch (§1) is that Kali's compiler-generated message passing
//! is "in many cases virtually identical" to what a programmer would have
//! written by hand in a message-passing language, while being far easier to
//! write and to re-distribute.  To check that claim we need the thing being
//! compared against:
//!
//! * [`handcoded`] — a hand-written SPMD Jacobi relaxation with explicit
//!   halo exchange: the programmer has hard-wired the block distribution,
//!   pre-translated the adjacency lists to local indices, and laid out ghost
//!   cells contiguously, so there is no run-time locality checking and no
//!   search overhead.  This is the paper's "had the user programmed directly
//!   in a message-passing language" baseline.
//! * [`sequential`] — a plain single-address-space Jacobi used as the
//!   numerical ground truth.

#![forbid(unsafe_code)]

pub mod handcoded;
pub mod sequential;

pub use handcoded::{handcoded_jacobi, HandcodedOutcome};
pub use sequential::sequential_jacobi;
