//! Hand-coded SPMD Jacobi with explicit halo exchange.
//!
//! This is what the paper assumes a careful programmer would write directly
//! in a message-passing language for the Figure 4 computation, and it is the
//! performance target the Kali-generated code is compared against:
//!
//! * the block distribution is hard-wired;
//! * during (untimed) set-up, the adjacency lists are translated to *local*
//!   indices, with off-processor neighbours pointing into a contiguous ghost
//!   region, and per-neighbour send/receive lists are precomputed;
//! * each sweep does one gather + send per neighbouring processor, one
//!   receive per neighbouring processor straight into the ghost region, and
//!   then a purely local relaxation with direct array indexing — no owner
//!   tests, no binary search.
//!
//! The price is everything the paper complains about in §1: the distribution
//! and the communication are frozen into the code, and changing either means
//! rewriting it.

use std::collections::BTreeMap;

use distrib::DimDist;
use dmsim::{Counters, Proc};
use kali_process::tags;
use meshes::AdjacencyMesh;

/// Per-processor result of the hand-coded run.
#[derive(Debug, Clone)]
pub struct HandcodedOutcome {
    /// Final values of the locally owned nodes (local-index order).
    pub local_a: Vec<f64>,
    /// Simulated seconds spent in the timed region on this processor.
    pub total_time: f64,
    /// Operation counters accumulated during the timed region.
    pub counters: Counters,
    /// Number of ghost elements received per sweep.
    pub ghost_elements: usize,
    /// Number of neighbouring processors exchanged with.
    pub neighbor_count: usize,
}

/// Run `sweeps` Jacobi sweeps with hand-written message passing.
///
/// Must be called collectively by every processor of the machine.  The node
/// arrays are block-distributed (the decomposition the paper calls obvious
/// for its test grids).
pub fn handcoded_jacobi(
    proc: &mut Proc,
    mesh: &AdjacencyMesh,
    initial: &[f64],
    sweeps: usize,
) -> HandcodedOutcome {
    let rank = proc.rank();
    let nprocs = proc.nprocs();
    let n = mesh.len();
    assert_eq!(initial.len(), n, "initial field must cover the mesh");
    let dist = DimDist::block(n, nprocs);
    let width = mesh.max_degree();
    let local_rows = dist.local_count(rank);

    // ---- Set-up (untimed): the programmer's hard-wired data layout --------
    // Ghost table: global index -> ghost slot, grouped by owning processor.
    let mut ghost_of: BTreeMap<usize, usize> = BTreeMap::new();
    let mut ghosts_by_owner: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for l in 0..local_rows {
        let g = dist.global_index(rank, l);
        for &nb in mesh.neighbors(g) {
            let nb = nb as usize;
            if !dist.is_local(rank, nb) && !ghost_of.contains_key(&nb) {
                ghost_of.insert(nb, 0); // slot assigned below
                ghosts_by_owner.entry(dist.owner(nb)).or_default().push(nb);
            }
        }
    }
    // Assign contiguous ghost slots grouped by owner, sorted by global index
    // (so sender and receiver agree on the packing order).
    let mut next_slot = local_rows;
    for list in ghosts_by_owner.values_mut() {
        list.sort_unstable();
        for &g in list.iter() {
            ghost_of.insert(g, next_slot);
            next_slot += 1;
        }
    }
    let ghost_elements = next_slot - local_rows;

    // Exchange request lists so every processor knows what to send (done by
    // hand once, untimed — the paper's programmer derived these by reasoning
    // about the decomposition).
    let requests: Vec<(usize, Vec<usize>)> = {
        let routed: Vec<(usize, (usize, Vec<usize>))> = ghosts_by_owner
            .iter()
            .map(|(&owner, list)| (owner, (rank, list.clone())))
            .collect();
        dmsim::collectives::direct_exchange(proc, routed)
    };
    // send_lists[q] = local indices (on this processor) to pack for q.
    let mut send_lists: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (requester, globals) in requests {
        let locals: Vec<usize> = globals.iter().map(|&g| dist.local_index(g)).collect();
        send_lists.insert(requester, locals);
    }

    // Local-index adjacency: owned neighbours point into 0..local_rows,
    // ghosts into local_rows..local_rows+ghost_elements.
    let mut local_adj: Vec<u32> = vec![0; local_rows * width];
    let mut local_coef: Vec<f64> = vec![0.0; local_rows * width];
    let mut count: Vec<u32> = vec![0; local_rows];
    for l in 0..local_rows {
        let g = dist.global_index(rank, l);
        let nbrs = mesh.neighbors(g);
        let cs = mesh.coefs(g);
        count[l] = nbrs.len() as u32;
        for (j, (&nb, &c)) in nbrs.iter().zip(cs).enumerate() {
            let nb = nb as usize;
            let li = if dist.is_local(rank, nb) {
                dist.local_index(nb)
            } else {
                ghost_of[&nb]
            };
            local_adj[l * width + j] = li as u32;
            local_coef[l * width + j] = c;
        }
    }

    let mut a: Vec<f64> = (0..local_rows)
        .map(|l| initial[dist.global_index(rank, l)])
        .collect();
    // old_a is extended by the ghost region.
    let mut old_a: Vec<f64> = vec![0.0; local_rows + ghost_elements];

    // ---- Timed region ------------------------------------------------------
    let start_clock = proc.clock();
    let counters_start = proc.counters();

    for sweep in 0..sweeps {
        let tag = tags::halo_tag(sweep as u64);

        // Copy the owned values into old_a.
        for l in 0..local_rows {
            proc.charge_loop_iters(1);
            proc.charge_mem_refs(2);
            old_a[l] = a[l];
        }

        // Halo exchange: one message per neighbouring processor.
        for (&dst, locals) in &send_lists {
            let mut payload = Vec::with_capacity(locals.len());
            for &l in locals {
                proc.charge_mem_refs(2);
                payload.push(a[l]);
            }
            proc.send_vec(dst, tag, payload);
        }
        let mut cursor = local_rows;
        for (&src, list) in &ghosts_by_owner {
            let (_, payload): (usize, Vec<f64>) = proc.recv_from(src, tag);
            assert_eq!(payload.len(), list.len(), "halo message size mismatch");
            for v in payload {
                proc.charge_mem_refs(2);
                old_a[cursor] = v;
                cursor += 1;
            }
        }
        cursor = local_rows; // reset for the next sweep's bookkeeping
        let _ = cursor;

        // Purely local relaxation with direct indexing.
        for l in 0..local_rows {
            proc.charge_loop_iters(1);
            proc.charge_mem_refs(1); // count[l]
            let deg = count[l] as usize;
            let mut x = 0.0f64;
            for j in 0..deg {
                proc.charge_loop_iters(1);
                proc.charge_mem_refs(3); // adj, coef, old_a[adj]
                proc.charge_flops(2);
                x += local_coef[l * width + j] * old_a[local_adj[l * width + j] as usize];
            }
            if deg > 0 {
                proc.charge_mem_refs(1);
                a[l] = x;
            }
        }
    }

    let total_time = proc.clock() - start_clock;
    let counters = proc.counters().since(&counters_start);

    HandcodedOutcome {
        local_a: a,
        total_time,
        counters,
        ghost_elements,
        neighbor_count: ghosts_by_owner.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::sequential_jacobi;
    use dmsim::{CostModel, Machine};
    use meshes::{RegularGrid, UnstructuredMeshBuilder};

    fn gather(nprocs: usize, mesh: &AdjacencyMesh, initial: &[f64], sweeps: usize) -> Vec<f64> {
        let machine = Machine::new(nprocs, CostModel::ideal());
        let outcomes = machine.run(|proc| handcoded_jacobi(proc, mesh, initial, sweeps));
        let dist = DimDist::block(mesh.len(), nprocs);
        let mut global = vec![0.0; mesh.len()];
        for (rank, o) in outcomes.iter().enumerate() {
            for (l, v) in o.local_a.iter().enumerate() {
                global[dist.global_index(rank, l)] = *v;
            }
        }
        global
    }

    #[test]
    fn matches_sequential_on_regular_grid() {
        let grid = RegularGrid::square(16);
        let mesh = grid.five_point_mesh();
        let initial = grid.initial_field();
        let expected = sequential_jacobi(&mesh, &initial, 9);
        for nprocs in [1, 2, 4, 8] {
            assert_eq!(
                gather(nprocs, &mesh, &initial, 9),
                expected,
                "nprocs={nprocs}"
            );
        }
    }

    #[test]
    fn matches_sequential_on_unstructured_mesh() {
        let mesh = UnstructuredMeshBuilder::new(11, 13).seed(99).build();
        let initial: Vec<f64> = (0..mesh.len()).map(|i| (i as f64).sin()).collect();
        let expected = sequential_jacobi(&mesh, &initial, 6);
        assert_eq!(gather(4, &mesh, &initial, 6), expected);
    }

    #[test]
    fn strip_decomposition_exchanges_one_message_per_neighbour_per_sweep() {
        let grid = RegularGrid::square(32);
        let mesh = grid.five_point_mesh();
        let initial = grid.initial_field();
        let machine = Machine::new(4, CostModel::ideal());
        let (outcomes, stats) =
            machine.run_stats(|proc| handcoded_jacobi(proc, &mesh, &initial, 5));
        // Interior strips have 2 neighbours, boundary strips 1.
        assert_eq!(outcomes[0].neighbor_count, 1);
        assert_eq!(outcomes[1].neighbor_count, 2);
        assert_eq!(outcomes[2].neighbor_count, 2);
        assert_eq!(outcomes[3].neighbor_count, 1);
        // Ghost region = one 32-node row per neighbour.
        assert_eq!(outcomes[1].ghost_elements, 64);
        // Messages: setup exchange (3 per proc for direct_exchange among 4)
        // plus 5 sweeps × 6 halo messages.
        let halo_msgs: u64 = 5 * 6;
        assert!(stats.totals.msgs_sent >= halo_msgs);
    }

    #[test]
    fn timed_region_excludes_setup() {
        let grid = RegularGrid::square(8);
        let mesh = grid.five_point_mesh();
        let initial = grid.initial_field();
        let machine = Machine::new(2, CostModel::ncube7());
        let outcomes = machine.run(|proc| handcoded_jacobi(proc, &mesh, &initial, 0));
        for o in outcomes {
            assert_eq!(
                o.total_time, 0.0,
                "zero sweeps must take zero simulated time"
            );
        }
    }
}
