//! # kali-repro — umbrella crate
//!
//! This crate re-exports the workspace members so that the repository-level
//! examples (`examples/`) and integration tests (`tests/`) can use a single
//! dependency.  The actual functionality lives in:
//!
//! * [`process`] (`kali-process`) — the machine-backend contract: the
//!   [`Process`](process::Process) trait every backend implements, and the
//!   centralised tag-space layout ([`process::tags`]).
//! * [`dmsim`] — the **simulator** backend: deterministic logical clocks
//!   and cost models for the paper's NCUBE/7 and iPSC/2, used to reproduce
//!   the published tables.
//! * [`native`] (`kali-native`) — the **native** backend: one OS thread per
//!   process with channel messaging, no cost accounting, wall-clock speed.
//! * [`mp`] (`kali-mp`) — the **multi-process** backend: one OS process per
//!   rank over Unix-domain sockets, every message a length-prefixed frame
//!   carrying a [`process::Wire`] encoding — the backend with no shared
//!   memory to smuggle anything through.
//! * [`distrib`] — processor grids, index sets and data distributions
//!   (block, cyclic, block-cyclic, replicated, user-defined).
//! * [`kali`] (`kali-core`) — the paper's contribution: a global name space
//!   over distributed arrays, `forall` loops, compile-time and run-time
//!   (inspector/executor) communication analysis, and schedule caching —
//!   all generic over the `Process` backend.
//! * [`meshes`] — regular and unstructured mesh workloads.
//! * [`solvers`] — Jacobi relaxation and friends written against the Kali
//!   API, plus the experiment driver that regenerates the paper's tables.
//! * [`baseline`] — hand-coded message-passing and sequential comparators.
//!
//! The same solver runs on either backend because it only ever talks to
//! `Process`; the `backend_equivalence` integration test pins the two
//! backends to bit-identical numerical results.

#![forbid(unsafe_code)]

pub use baseline;
pub use distrib;
pub use dmsim;
pub use kali_core as kali;
pub use kali_mp as mp;
pub use kali_native as native;
pub use kali_process as process;
pub use meshes;
pub use solvers;
