//! # kali-repro — umbrella crate
//!
//! This crate re-exports the workspace members so that the repository-level
//! examples (`examples/`) and integration tests (`tests/`) can use a single
//! dependency.  The actual functionality lives in:
//!
//! * [`dmsim`] — distributed-memory machine simulator (processors, messages,
//!   cost models for the NCUBE/7 and iPSC/2).
//! * [`distrib`] — processor grids, index sets and data distributions
//!   (block, cyclic, block-cyclic, replicated, user-defined).
//! * [`kali`] (`kali-core`) — the paper's contribution: a global name space
//!   over distributed arrays, `forall` loops, compile-time and run-time
//!   (inspector/executor) communication analysis, and schedule caching.
//! * [`meshes`] — regular and unstructured mesh workloads.
//! * [`solvers`] — Jacobi relaxation and friends written against the Kali
//!   API, plus the experiment driver that regenerates the paper's tables.
//! * [`baseline`] — hand-coded message-passing and sequential comparators.

pub use baseline;
pub use distrib;
pub use dmsim;
pub use kali_core as kali;
pub use meshes;
pub use solvers;
