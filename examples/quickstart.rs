//! Quickstart: the paper's Figure 1 in Rust.
//!
//! ```text
//! processors Procs: array [ 1..P ] with P in 1..max_procs;
//! var A : array[1..N] of real dist by [ block ] on Procs;
//! forall i in 1..N-1 on A[i].loc do
//!     A[i] := A[i+1];
//! end;
//! ```
//!
//! The loop body is written against the global name space; the library
//! derives the communication (each processor needs one halo element from its
//! right neighbour) with the compile-time analysis, executes the loop on a
//! simulated 8-processor hypercube, and prints what moved where.
//!
//! Run with: `cargo run --example quickstart`

use kali_repro::distrib::DimDist;
use kali_repro::dmsim::{CostModel, Machine};
use kali_repro::kali::{AffineMap, ParallelLoop, ScheduleCache};

fn main() {
    const N: usize = 64;
    const P: usize = 8;

    // A "real estate agent" (paper §2.1): an 8-processor machine with the
    // NCUBE/7 cost model, connected as a hypercube.
    let machine = Machine::new(P, CostModel::ncube7());
    println!(
        "machine: {} processors on a {:?}",
        machine.nprocs(),
        machine.topology()
    );

    let (results, stats) = machine.run_stats(|proc| {
        // var A : array[0..N) of real dist by [block];
        let dist = DimDist::block(N, proc.nprocs());
        let rank = proc.rank();
        let local_a: Vec<f64> = dist.local_set(rank).iter().map(|g| g as f64).collect();

        // forall i in 0..N-1 on A[i].loc do A[i] := A[i+1] end
        let shift = ParallelLoop::over_1d(1, N - 1, dist.clone());
        let mut cache = ScheduleCache::new();
        let schedule = shift.plan(proc, &mut cache, &dist, &[AffineMap::shift(1)], 0);

        let mut new_a = local_a.clone();
        shift.execute(proc, 0, &schedule, &dist, &local_a, |i, fetch| {
            new_a[dist.local_index(i)] = fetch.fetch(i + 1);
        });

        (rank, schedule.recv_len, schedule.send_len(), new_a)
    });

    println!("\nper-processor communication derived by the compile-time analysis:");
    for (rank, recv, send, _) in &results {
        println!("  processor {rank}: receives {recv} element(s), sends {send} element(s)");
    }

    // Check the result against the sequential semantics.
    let dist = DimDist::block(N, P);
    let mut global = vec![0.0f64; N];
    for (rank, _, _, local) in &results {
        for (l, v) in local.iter().enumerate() {
            global[dist.global_index(*rank, l)] = *v;
        }
    }
    let ok = (0..N - 1).all(|i| global[i] == (i + 1) as f64) && global[N - 1] == (N - 1) as f64;
    println!("\nresult matches copy-in/copy-out semantics: {ok}");
    println!(
        "simulated time: {:.6} s, messages: {}, bytes: {}",
        stats.time, stats.totals.msgs_sent, stats.totals.bytes_sent
    );
}
