//! Distribution independence: the paper's central usability claim.
//!
//! "With our primitives a variety of distribution patterns can easily be
//! tried by trivial modification of this program.  Such a modification in a
//! message passing language would involve extensive rewriting of the
//! communications statements." (§2.4)
//!
//! This example runs the *same* loop body — a 1-D three-point stencil
//! `B[i] := (A[i-1] + A[i] + A[i+1]) / 3` — under block, cyclic,
//! block-cyclic and a user-defined distribution, changing nothing but the
//! `dist` declaration, and reports how much communication each distribution
//! induces.  The numbers make the paper's point: the program text is
//! distribution independent, the performance is not.
//!
//! Run with: `cargo run --example distribution_playground`

use kali_repro::distrib::DimDist;
use kali_repro::dmsim::{CostModel, Machine};
use kali_repro::kali::{AffineMap, ParallelLoop, ScheduleCache};

fn main() {
    const N: usize = 4096;
    const P: usize = 16;

    // A user-defined distribution: interleaved pairs, the kind of thing a
    // load-balancing heuristic might produce.
    let custom_owners: Vec<usize> = (0..N).map(|i| (i / 2) % P).collect();

    let distributions: Vec<(&str, DimDist)> = vec![
        ("block", DimDist::block(N, P)),
        ("cyclic", DimDist::cyclic(N, P)),
        ("block-cyclic(32)", DimDist::block_cyclic(N, P, 32)),
        ("user-defined", DimDist::custom(custom_owners, P)),
    ];

    println!("three-point stencil over {N} elements on {P} processors (NCUBE/7 model)\n");
    println!(
        "{:>18}  {:>14}  {:>14}  {:>12}  {:>14}  {:>12}",
        "distribution",
        "halo elements",
        "msgs / sweep",
        "local iters",
        "nonlocal iters",
        "sim time (s)"
    );

    for (name, dist) in distributions {
        let machine = Machine::new(P, CostModel::ncube7());
        let (rows, stats) = machine.run_stats(|proc| {
            let dist = dist.clone();
            let rank = proc.rank();
            let local_a: Vec<f64> = dist
                .local_set(rank)
                .iter()
                .map(|g| (g % 17) as f64)
                .collect();
            let mut local_b = local_a.clone();

            // The loop body below is identical for every distribution.
            let stencil = ParallelLoop::over_1d(7, N, dist.clone()).range(1, N - 1);
            let mut cache = ScheduleCache::new();
            let refs = [
                AffineMap::shift(-1),
                AffineMap::identity(),
                AffineMap::shift(1),
            ];
            let schedule = stencil.plan(proc, &mut cache, &dist, &refs, 0);
            stencil.execute(proc, 0, &schedule, &dist, &local_a, |i, fetch| {
                let v = (fetch.fetch(i - 1) + fetch.fetch(i) + fetch.fetch(i + 1)) / 3.0;
                fetch.proc().charge_flops(3);
                local_b[dist.local_index(i)] = v;
            });
            (
                schedule.recv_len,
                schedule.recv_partner_count(),
                schedule.local_iters.len(),
                schedule.nonlocal_iters.len(),
            )
        });
        let halo: usize = rows.iter().map(|r| r.0).sum();
        let local: usize = rows.iter().map(|r| r.2).sum();
        let nonlocal: usize = rows.iter().map(|r| r.3).sum();
        println!(
            "{:>18}  {:>14}  {:>14}  {:>12}  {:>14}  {:>12.4}",
            name, halo, stats.totals.msgs_sent, local, nonlocal, stats.time
        );
    }

    println!("\nSame loop body, four distributions: block keeps ~99% of iterations local,");
    println!("cyclic makes every iteration nonlocal — the trade-off the paper leaves");
    println!("in the programmer's hands while hiding the message passing.");
}
