//! Run the paper's Figure 4 workload on different machine models.
//!
//! The paper's analysis of its own numbers hinges on machine characteristics
//! (NCUBE/7: slow calls and expensive small messages; iPSC/2: cheap calls
//! and cheap small messages).  This example runs the identical program on
//! the NCUBE/7 model, the iPSC/2 model, and a "modern cluster" model, and
//! shows how the inspector overhead and the executor scaling change — the
//! kind of what-if the simulator substrate makes possible.
//!
//! Run with: `cargo run --release --example machine_comparison`

use kali_repro::distrib::DimDist;
use kali_repro::dmsim::{CostModel, Machine};
use kali_repro::meshes::RegularGrid;
use kali_repro::solvers::{jacobi_sweeps, JacobiConfig};

fn main() {
    let grid = RegularGrid::square(128);
    let mesh = grid.five_point_mesh();
    let initial = grid.initial_field();
    let sweeps = 20;

    println!(
        "Jacobi, {}x{} mesh, {} sweeps, block distribution\n",
        grid.nx(),
        grid.ny(),
        sweeps
    );
    println!(
        "{:>10}  {:>6}  {:>12}  {:>14}  {:>10}  {:>12}",
        "machine", "procs", "total (s)", "inspector (s)", "overhead", "imbalance"
    );

    for cost in [
        CostModel::ncube7(),
        CostModel::ipsc2(),
        CostModel::cluster(),
    ] {
        for nprocs in [4usize, 16, 64] {
            let machine = Machine::new(nprocs, cost.clone());
            let (outcomes, stats) = machine.run_stats(|proc| {
                let dist = DimDist::block(mesh.len(), proc.nprocs());
                jacobi_sweeps(
                    proc,
                    &mesh,
                    &dist,
                    &initial,
                    &JacobiConfig::with_sweeps(sweeps),
                )
            });
            let total = outcomes.iter().map(|o| o.total_time).fold(0.0, f64::max);
            let inspector = outcomes
                .iter()
                .map(|o| o.inspector_time)
                .fold(0.0, f64::max);
            println!(
                "{:>10}  {:>6}  {:>12.4}  {:>14.4}  {:>9.2}%  {:>12.3}",
                cost.name,
                nprocs,
                total,
                inspector,
                inspector / total * 100.0,
                stats.imbalance()
            );
        }
        println!();
    }
    println!("The NCUBE/7's expensive global combine makes the inspector visible at high");
    println!("processor counts; on the iPSC/2 and on a modern cluster it all but vanishes —");
    println!("matching the paper's §4 discussion.");
}
