//! The paper's Figure 4 workload on a genuinely unstructured mesh.
//!
//! The reference `old_a[adj[i, j]]` depends on the run-time `adj` array, so
//! the compiler cannot derive the communication — the run-time inspector
//! does (once), its schedule is cached, and the executor reuses it for every
//! sweep.  This example prints the inspector/executor breakdown on both of
//! the paper's machines plus the communication statistics, and verifies the
//! result against a sequential run.
//!
//! Run with: `cargo run --release --example jacobi_unstructured`

use kali_repro::baseline::sequential_jacobi;
use kali_repro::distrib::DimDist;
use kali_repro::dmsim::{CostModel, Machine};
use kali_repro::meshes::UnstructuredMeshBuilder;
use kali_repro::solvers::{jacobi_sweeps, JacobiConfig};

fn main() {
    // A 96x96-point unstructured mesh (average degree ~6, scrambled node
    // numbering so nonlocal references are scattered).
    let mesh = UnstructuredMeshBuilder::new(96, 96)
        .seed(1990)
        .scramble_numbering(true)
        .build();
    let initial: Vec<f64> = (0..mesh.len())
        .map(|i| ((i * 37) % 101) as f64 / 101.0)
        .collect();
    let sweeps = 25;
    println!(
        "mesh: {} nodes, {} directed edges, average degree {:.2}",
        mesh.len(),
        mesh.edge_count(),
        mesh.average_degree()
    );

    let expected = sequential_jacobi(&mesh, &initial, sweeps);

    for cost in [CostModel::ncube7(), CostModel::ipsc2()] {
        for nprocs in [4usize, 16] {
            let machine = Machine::new(nprocs, cost.clone());
            let config = JacobiConfig {
                sweeps,
                convergence_check_every: Some(5),
                ..JacobiConfig::default()
            };
            let (outcomes, stats) = machine.run_stats(|proc| {
                let dist = DimDist::block(mesh.len(), proc.nprocs());
                jacobi_sweeps(proc, &mesh, &dist, &initial, &config)
            });

            // Verify against the sequential reference.
            let dist = DimDist::block(mesh.len(), nprocs);
            let mut global = vec![0.0f64; mesh.len()];
            for (rank, o) in outcomes.iter().enumerate() {
                for (l, v) in o.local_a.iter().enumerate() {
                    global[dist.global_index(rank, l)] = *v;
                }
            }
            let correct = global == expected;

            let total = outcomes.iter().map(|o| o.total_time).fold(0.0, f64::max);
            let inspector = outcomes
                .iter()
                .map(|o| o.inspector_time)
                .fold(0.0, f64::max);
            let ghosts: usize = outcomes.iter().map(|o| o.recv_elements).sum();
            let ranges: usize = outcomes.iter().map(|o| o.schedule_ranges).sum();
            println!(
                "\n{:>8} x{:>3} procs | total {:8.2} s | inspector {:6.3} s ({:4.1}%) | \
                 ghost elements/sweep {:5} | schedule ranges {:4} | msgs {:6} | correct: {}",
                cost.name,
                nprocs,
                total,
                inspector,
                inspector / total * 100.0,
                ghosts,
                ranges,
                stats.totals.msgs_sent,
                correct
            );
        }
    }
    println!("\n(The scrambled numbering fragments the receive sets into many ranges —");
    println!(" exactly the situation the paper's sorted range records are designed for.)");
}
