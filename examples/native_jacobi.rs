//! The paper's Figure 4 Jacobi program on the **native threaded backend**.
//!
//! The whole point of the `Process` abstraction: the identical solver code
//! that reproduces the paper's tables on the `dmsim` simulator also runs on
//! real OS threads at wall-clock speed — and produces bit-identical
//! numerical results, which this example verifies against both the
//! simulator and the sequential reference.
//!
//! Run with: `cargo run --release --example native_jacobi`

use std::time::Instant;

use kali_repro::distrib::DimDist;
use kali_repro::dmsim::{CostModel, Machine};
use kali_repro::meshes::UnstructuredMeshBuilder;
use kali_repro::native::NativeMachine;
use kali_repro::process::Process;
use kali_repro::solvers::{jacobi_sequential, jacobi_sweeps, JacobiConfig};

fn main() {
    let side = 96;
    let sweeps = 40;
    let nprocs = 8;

    let mesh = UnstructuredMeshBuilder::new(side, side).seed(7).build();
    let n = mesh.len();
    let initial: Vec<f64> = (0..n).map(|i| ((i * 13) % 101) as f64 * 0.01).collect();
    let config = JacobiConfig::with_sweeps(sweeps);
    println!(
        "unstructured mesh: {n} nodes, average degree {:.2}, {sweeps} sweeps, {nprocs} processes",
        mesh.average_degree()
    );

    // -- native backend: wall-clock speed ---------------------------------
    let start = Instant::now();
    let native_outcomes = NativeMachine::new(nprocs).run(|proc| {
        let dist = DimDist::block(n, proc.nprocs());
        jacobi_sweeps(proc, &mesh, &dist, &initial, &config)
    });
    let native_wall = start.elapsed();
    println!(
        "native backend : {:>10.3} ms wall-clock",
        native_wall.as_secs_f64() * 1e3
    );

    // -- simulator: same program, simulated NCUBE/7 time -------------------
    let start = Instant::now();
    let sim_outcomes = Machine::new(nprocs, CostModel::ncube7()).run(|proc| {
        let dist = DimDist::block(n, proc.nprocs());
        jacobi_sweeps(proc, &mesh, &dist, &initial, &config)
    });
    let sim_wall = start.elapsed();
    let sim_time = sim_outcomes
        .iter()
        .map(|o| o.total_time)
        .fold(0.0f64, f64::max);
    println!(
        "dmsim (NCUBE/7): {:>10.3} ms wall-clock, {sim_time:.2} simulated seconds",
        sim_wall.as_secs_f64() * 1e3
    );

    // -- equivalence -------------------------------------------------------
    let dist = DimDist::block(n, nprocs);
    let mut native_global = vec![0.0f64; n];
    let mut sim_global = vec![0.0f64; n];
    for (rank, (nat, sim)) in native_outcomes.iter().zip(&sim_outcomes).enumerate() {
        for (l, (nv, sv)) in nat.local_a.iter().zip(&sim.local_a).enumerate() {
            native_global[dist.global_index(rank, l)] = *nv;
            sim_global[dist.global_index(rank, l)] = *sv;
        }
    }
    assert_eq!(native_global, sim_global, "backends must agree bit-for-bit");
    assert_eq!(
        native_global,
        jacobi_sequential(&mesh, &initial, sweeps),
        "distributed result must match the sequential reference"
    );
    println!("native == dmsim == sequential: bit-identical results ✓");
}
